"""Tests for the baseline allocators (caching, expandable segments, GMLake, native)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocators.base import AllocationHints
from repro.allocators.caching import (
    CachingAllocator,
    CachingAllocatorConfig,
    K_LARGE_BUFFER,
    K_SMALL_BUFFER,
    torch20_config,
    torch23_config,
)
from repro.allocators.expandable import ExpandableSegmentsAllocator
from repro.allocators.gmlake import GMLakeAllocator, GMLakeConfig
from repro.allocators.native import NativeAllocator
from repro.allocators.registry import available_allocators, create_allocator, register_allocator
from repro.gpu.device import Device, GIB, KIB, MIB
from repro.gpu.errors import OutOfMemoryError


class TestCachingAllocatorConfig:
    def test_round_size_minimum(self):
        assert CachingAllocatorConfig().round_size(1) == 512

    def test_round_size_multiple(self):
        assert CachingAllocatorConfig().round_size(513) == 1024

    def test_pool_selection(self):
        config = CachingAllocatorConfig()
        assert config.pool_for(512 * KIB) == "small"
        assert config.pool_for(2 * MIB) == "large"

    def test_segment_sizes(self):
        config = CachingAllocatorConfig()
        assert config.segment_size_for(512 * KIB) == K_SMALL_BUFFER
        assert config.segment_size_for(4 * MIB) == K_LARGE_BUFFER
        assert config.segment_size_for(33 * MIB) == 34 * MIB  # rounded to 2 MiB

    def test_presets_have_labels(self):
        assert torch20_config().label == "torch2.0"
        assert torch23_config().label == "torch2.3"
        assert torch23_config().max_split_size is not None


class TestCachingAllocator:
    def test_small_request_reserves_small_segment(self, device):
        allocator = CachingAllocator(device)
        allocator.allocate(1, 4 * KIB)
        assert allocator.reserved_bytes == K_SMALL_BUFFER

    def test_medium_request_reserves_large_buffer(self, device):
        allocator = CachingAllocator(device)
        allocator.allocate(1, 4 * MIB)
        assert allocator.reserved_bytes == K_LARGE_BUFFER

    def test_huge_request_reserves_exact_segment(self, device):
        allocator = CachingAllocator(device)
        allocator.allocate(1, 100 * MIB)
        assert allocator.reserved_bytes == 100 * MIB

    def test_cache_reuse_avoids_new_segment(self, device):
        allocator = CachingAllocator(device)
        allocator.allocate(1, 64 * MIB)
        allocator.free(1)
        allocator.allocate(2, 64 * MIB)
        assert allocator.reserved_bytes == 64 * MIB
        assert allocator.stats.cache_hits == 1

    def test_best_fit_prefers_smallest_block(self, device):
        allocator = CachingAllocator(device)
        allocator.allocate(1, 64 * MIB)
        allocator.allocate(2, 32 * MIB)
        allocator.free(1)
        allocator.free(2)
        placement = allocator.allocate(3, 30 * MIB)
        assert placement.pool == "segment:2"  # the 32 MiB segment, not the 64 MiB one

    def test_split_creates_remainder(self, device):
        allocator = CachingAllocator(device)
        allocator.allocate(1, 64 * MIB)
        allocator.free(1)
        allocator.allocate(2, 40 * MIB)
        assert allocator.stats.splits >= 1
        assert allocator.reserved_bytes == 64 * MIB
        # The 24 MiB remainder can serve another request without a new segment.
        allocator.allocate(3, 20 * MIB)
        assert allocator.reserved_bytes == 64 * MIB

    def test_merge_on_free(self, device):
        allocator = CachingAllocator(device)
        allocator.allocate(1, 64 * MIB)
        allocator.free(1)
        allocator.allocate(2, 32 * MIB)
        allocator.allocate(3, 32 * MIB)
        allocator.free(2)
        allocator.free(3)
        assert allocator.stats.merges >= 1
        # After merging, a full-size request fits again without a new segment.
        allocator.allocate(4, 64 * MIB)
        assert allocator.reserved_bytes == 64 * MIB

    def test_allocated_bytes_tracks_requested_sizes(self, device):
        allocator = CachingAllocator(device)
        allocator.allocate(1, 10 * MIB)
        allocator.allocate(2, 5 * MIB)
        assert allocator.allocated_bytes == 15 * MIB
        allocator.free(1)
        assert allocator.allocated_bytes == 5 * MIB

    def test_release_cached_segments(self, device):
        allocator = CachingAllocator(device)
        allocator.allocate(1, 64 * MIB)
        allocator.free(1)
        released = allocator.release_cached_segments()
        assert released == 64 * MIB
        assert allocator.reserved_bytes == 0

    def test_oom_triggers_cache_release_and_retry(self, small_device):
        allocator = CachingAllocator(small_device)
        allocator.allocate(1, 40 * MIB)
        allocator.free(1)
        # 40 MiB is cached; a 50 MiB request does not fit the device unless the
        # cache is released first.
        allocator.allocate(2, 50 * MIB)
        assert allocator.reserved_bytes == 50 * MIB

    def test_oom_raised_when_truly_full(self, small_device):
        allocator = CachingAllocator(small_device)
        allocator.allocate(1, 40 * MIB)
        with pytest.raises(OutOfMemoryError):
            allocator.allocate(2, 40 * MIB)

    def test_double_allocate_same_request_rejected(self, device):
        allocator = CachingAllocator(device)
        allocator.allocate(1, MIB)
        with pytest.raises(ValueError):
            allocator.allocate(1, MIB)

    def test_free_unknown_request_rejected(self, device):
        allocator = CachingAllocator(device)
        with pytest.raises(KeyError):
            allocator.free(99)

    def test_max_split_size_keeps_oversize_blocks_whole(self, device):
        config = CachingAllocatorConfig(max_split_size=64 * MIB, label="test")
        allocator = CachingAllocator(device, config)
        allocator.allocate(1, 128 * MIB)
        allocator.free(1)
        # A small request must not consume (and waste) the oversize cached
        # block; it gets its own (exact-size) segment instead.
        allocator.allocate(2, 16 * MIB)
        assert allocator.reserved_bytes == 128 * MIB + 16 * MIB

    def test_peak_statistics(self, device):
        allocator = CachingAllocator(device)
        allocator.allocate(1, 32 * MIB)
        allocator.allocate(2, 32 * MIB)
        allocator.free(1)
        allocator.free(2)
        assert allocator.stats.peak_allocated == 64 * MIB
        assert allocator.stats.peak_reserved >= 64 * MIB

    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=64 * MIB), st.booleans()),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_invariants_under_random_workload(self, operations):
        """Reserved covers allocated; free/alloc bookkeeping never corrupts."""
        device = Device(name="prop", capacity=512 * GIB)
        allocator = CachingAllocator(device)
        live: list[int] = []
        for index, (size, should_free) in enumerate(operations):
            allocator.allocate(index, size)
            live.append(index)
            if should_free and live:
                allocator.free(live.pop(0))
            assert allocator.reserved_bytes >= 0
            assert allocator.reserved_bytes == device.in_use
            assert allocator.allocated_bytes <= allocator.reserved_bytes
        for req_id in live:
            allocator.free(req_id)
        assert allocator.allocated_bytes == 0


class TestExpandableSegmentsAllocator:
    def test_reserved_grows_by_granules(self, device):
        allocator = ExpandableSegmentsAllocator(device)
        allocator.allocate(1, 3 * MIB)
        assert allocator.reserved_bytes == 4 * MIB  # two 2 MiB granules

    def test_arena_reuses_freed_space(self, device):
        allocator = ExpandableSegmentsAllocator(device)
        allocator.allocate(1, 8 * MIB)
        allocator.free(1)
        allocator.allocate(2, 8 * MIB)
        assert allocator.reserved_bytes == 8 * MIB

    def test_small_and_large_pools_are_separate(self, device):
        allocator = ExpandableSegmentsAllocator(device)
        allocator.allocate(1, 4 * KIB)
        allocator.allocate(2, 8 * MIB)
        assert len(allocator._arenas) == 2

    def test_vmm_ops_counted(self, device):
        allocator = ExpandableSegmentsAllocator(device)
        allocator.allocate(1, 8 * MIB)
        assert allocator.stats.vmm_ops > 0
        assert allocator.overhead_seconds() > 0

    def test_reclaims_granules_under_pressure(self, small_device):
        allocator = ExpandableSegmentsAllocator(small_device)
        allocator.allocate(1, 40 * MIB)
        allocator.free(1)
        # Without reclaiming the 40 MiB of mapped granules this would OOM.
        allocator.allocate(2, 50 * MIB)
        assert allocator.allocated_bytes == 50 * MIB

    def test_oom_when_live_data_exceeds_device(self, small_device):
        allocator = ExpandableSegmentsAllocator(small_device)
        allocator.allocate(1, 40 * MIB)
        with pytest.raises(OutOfMemoryError):
            allocator.allocate(2, 40 * MIB)


class TestGMLakeAllocator:
    def test_behaves_like_caching_for_small_requests(self, device):
        allocator = GMLakeAllocator(device)
        allocator.allocate(1, 4 * KIB)
        allocator.free(1)
        assert allocator.stats.stitches == 0

    def test_stitches_fragmented_blocks(self, device):
        allocator = GMLakeAllocator(device, GMLakeConfig(frag_limit=32 * MIB))
        # Create two non-adjacent free blocks of 64 MiB each (separate segments).
        allocator.allocate(1, 64 * MIB)
        allocator.allocate(2, 64 * MIB)
        allocator.free(1)
        allocator.free(2)
        reserved_before = allocator.reserved_bytes
        allocator.allocate(3, 100 * MIB)
        assert allocator.stats.stitches == 1
        assert allocator.reserved_bytes == reserved_before  # no new segment
        allocator.free(3)

    def test_stitch_respects_frag_limit(self, device):
        allocator = GMLakeAllocator(device, GMLakeConfig(frag_limit=512 * MIB))
        allocator.allocate(1, 64 * MIB)
        allocator.allocate(2, 64 * MIB)
        allocator.free(1)
        allocator.free(2)
        allocator.allocate(3, 100 * MIB)
        # Blocks below fragLimit are not stitched; a new segment is reserved.
        assert allocator.stats.stitches == 0
        assert allocator.reserved_bytes > 128 * MIB

    def test_stitched_free_restores_blocks(self, device):
        allocator = GMLakeAllocator(device, GMLakeConfig(frag_limit=32 * MIB))
        allocator.allocate(1, 64 * MIB)
        allocator.allocate(2, 64 * MIB)
        allocator.free(1)
        allocator.free(2)
        allocator.allocate(3, 100 * MIB)
        allocator.free(3)
        # The two original blocks are reusable again.
        allocator.allocate(4, 64 * MIB)
        allocator.allocate(5, 64 * MIB)
        assert allocator.reserved_bytes == 128 * MIB

    def test_vmm_ops_counted_for_stitches(self, device):
        allocator = GMLakeAllocator(device, GMLakeConfig(frag_limit=32 * MIB))
        allocator.allocate(1, 64 * MIB)
        allocator.allocate(2, 64 * MIB)
        allocator.free(1)
        allocator.free(2)
        allocator.allocate(3, 100 * MIB)
        assert allocator.stats.vmm_ops >= 3
        assert allocator.overhead_seconds() > 0


class TestNativeAllocator:
    def test_reserved_equals_allocated(self, device):
        allocator = NativeAllocator(device)
        allocator.allocate(1, 10 * MIB)
        allocator.allocate(2, 6 * MIB)
        assert allocator.reserved_bytes == allocator.allocated_bytes == 16 * MIB
        allocator.free(1)
        assert allocator.reserved_bytes == 6 * MIB

    def test_every_call_hits_the_driver(self, device):
        allocator = NativeAllocator(device)
        for index in range(5):
            allocator.allocate(index, MIB)
        assert allocator.stats.device_malloc_calls == 5
        assert allocator.overhead_seconds() > 0

    def test_oom_propagates(self, small_device):
        allocator = NativeAllocator(small_device)
        with pytest.raises(OutOfMemoryError):
            allocator.allocate(1, 100 * MIB)


class TestRegistry:
    def test_known_allocators_exist(self):
        names = available_allocators()
        for expected in ("native", "torch2.0", "torch2.3", "torch_es", "gmlake"):
            assert expected in names

    def test_create_allocator(self, device):
        allocator = create_allocator("torch2.3", device)
        assert isinstance(allocator, CachingAllocator)
        assert allocator.name == "torch2.3"

    def test_unknown_name_raises(self, device):
        with pytest.raises(ValueError):
            create_allocator("does-not-exist", device)

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_allocator("native", NativeAllocator)

    def test_zero_size_allocation_rejected(self, device):
        allocator = create_allocator("torch2.0", device)
        with pytest.raises(ValueError):
            allocator.allocate(1, 0)

    def test_hints_are_optional(self, device):
        allocator = create_allocator("torch2.0", device)
        allocator.allocate(1, MIB, AllocationHints(module="layer0"))
        allocator.free(1)
