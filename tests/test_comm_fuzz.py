"""Seeded fuzz/property suite for the expert-parallel all-to-all memory model.

The dispatch/combine transients are derived quantities: their sizes follow the
router's global gating draw, so a bug anywhere in the chain (router slicing,
origin-share computation, tracegen plumbing) breaks one of three invariants
this suite locks down across ~200 randomly drawn configurations:

* **token conservation** -- the recv-side loads of the EP group sum to the
  routed load (``tokens * top_k``) of every layer execution, and so do the
  origin-side send shares;
* **legacy equivalence** -- ``moe_comm_factor == 0`` produces the comm-free
  event stream byte-for-byte (no all-to-all events, and stripping the
  all-to-all events from a comm-enabled trace recovers the comm-free trace's
  exact event sequence);
* **monotonicity** -- peak memory never decreases in ``moe_comm_factor``, and
  with a skewed router plus a non-zero factor the binding EP rank's peak
  strictly exceeds the comm-free baseline.

Configurations are drawn from a fixed-seed RNG, so failures reproduce.
"""

from __future__ import annotations

import random

import pytest

from repro.workloads.memory_model import ACT_BYTES, MemoryModel
from repro.workloads.moe import ExpertRouter
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.tracegen import TraceGenerator
from repro.workloads.training import TrainingConfig

MOE_TINY = get_model("moe-tiny")  # 8 layers, 8 experts, top_k=2, hidden 512


def _moe_config(
    *,
    pipeline: int = 2,
    expert: int = 4,
    imbalance: float = 0.6,
    comm_factor: float = 1.0,
    num_microbatches: int = 2,
    micro_batch_size: int = 1,
) -> TrainingConfig:
    return TrainingConfig(
        model=MOE_TINY,
        parallelism=ParallelismConfig(
            pipeline_parallel=pipeline, data_parallel=4, expert_parallel=expert
        ),
        micro_batch_size=micro_batch_size,
        num_microbatches=num_microbatches,
        moe_imbalance=imbalance,
        moe_comm_factor=comm_factor,
    )


def _draw_configs(count: int, *, rng_seed: int) -> list[tuple]:
    """(pp, ep, imbalance, comm_factor, trace_seed) tuples, reproducibly."""
    rng = random.Random(rng_seed)
    draws = []
    for _ in range(count):
        draws.append(
            (
                rng.choice([1, 2, 4]),          # pipeline degrees dividing 8 layers
                rng.choice([1, 2, 4, 8]),       # EP degrees dividing 8 experts
                rng.choice([0.0, rng.random()]),  # half the draws exercise imbalance 0
                rng.choice([0.0, 0.25, 0.5, 1.0, rng.uniform(0.0, 2.0)]),
                rng.randrange(10_000),
            )
        )
    return draws


def _a2a_sizes(trace, tag: str) -> dict[tuple, int]:
    """Allocation size of every all-to-all buffer, keyed by its execution."""
    return {
        (event.phase.microbatch, event.phase.chunk, event.module): event.size
        for event in trace.events
        if event.is_alloc() and event.tag == tag
    }


def _event_keys(trace, *, drop_a2a: bool) -> list[tuple]:
    """Time/req_id-free view of the event stream (stable under renumbering)."""
    return [
        (event.kind.value, event.size, event.tag, event.category.value,
         event.module, event.dyn)
        for event in trace.events
        if not (drop_a2a and event.tag.startswith("a2a_"))
    ]


# ---------------------------------------------------------------------- #
# Router/memory-model level: the full ~200-configuration fuzz
# ---------------------------------------------------------------------- #
class TestTokenConservationFuzz:
    @pytest.mark.parametrize("case", _draw_configs(200, rng_seed=1234))
    def test_recv_and_send_conserve_routed_load(self, case):
        """Per layer execution: sum(recv over EP group) == tokens * top_k ==
        sum(send over EP group), for every fuzzed configuration."""
        pipeline, expert, imbalance, comm_factor, seed = case
        config = _moe_config(
            pipeline=pipeline, expert=expert, imbalance=imbalance, comm_factor=comm_factor
        )
        models = [
            MemoryModel(config, rank=0, ep_rank=ep_rank) for ep_rank in range(expert)
        ]
        tokens = models[0].tokens
        routed = tokens * MOE_TINY.moe_top_k
        routers = [
            ExpertRouter(
                num_experts=MOE_TINY.num_experts,
                num_local_experts=model.num_local_experts,
                top_k=MOE_TINY.moe_top_k,
                seed=seed,
                imbalance=imbalance,
                ep_rank=model.ep_rank,
            )
            for model in models
        ]
        for layer, microbatch in [(0, 0), (3, 1), (7, 0)]:
            recv_total = sum(
                sum(router.route(tokens, layer=layer, microbatch=microbatch))
                for router in routers
            )
            assert recv_total == routed, (case, layer, microbatch)
        send_total = sum(model.dispatch_send_tokens() for model in models)
        assert send_total == routed, case

    @pytest.mark.parametrize("case", _draw_configs(40, rng_seed=99)[:40])
    def test_buffer_sizes_follow_token_counts(self, case):
        """Memory-model buffer sizes invert back to the exact token counts
        (512-aligned sizes are exact for factor in {0.5, 1.0} at hidden 512)."""
        pipeline, expert, imbalance, _, seed = case
        factor = 1.0 if seed % 2 else 0.5
        config = _moe_config(
            pipeline=pipeline, expert=expert, imbalance=imbalance, comm_factor=factor
        )
        for ep_rank in range(expert):
            model = MemoryModel(config, rank=0, ep_rank=ep_rank)
            recv_tokens = 137 + ep_rank
            per_token = factor * MOE_TINY.hidden_size * ACT_BYTES
            dispatch = {spec.tag: spec.size for spec in model.moe_dispatch_tensors(recv_tokens)}
            combine = {spec.tag: spec.size for spec in model.moe_combine_tensors(recv_tokens)}
            assert dispatch["a2a_dispatch_recv"] == int(recv_tokens * per_token)
            assert dispatch["a2a_dispatch_send"] == int(
                model.dispatch_send_tokens() * per_token
            )
            # Combine mirrors dispatch with the directions swapped.
            assert combine["a2a_combine_send"] == dispatch["a2a_dispatch_recv"]
            assert combine["a2a_combine_recv"] == dispatch["a2a_dispatch_send"]

    def test_comm_factor_zero_produces_no_buffers(self):
        model = MemoryModel(_moe_config(comm_factor=0.0), rank=0, ep_rank=1)
        assert model.moe_dispatch_tensors(512) == []
        assert model.moe_combine_tensors(512) == []

    def test_dense_model_produces_no_buffers(self):
        config = TrainingConfig(
            model=get_model("gpt-tiny"),
            parallelism=ParallelismConfig(pipeline_parallel=2),
            moe_comm_factor=1.0,
        )
        model = MemoryModel(config)
        assert model.dispatch_send_tokens() == 0
        assert model.moe_dispatch_tensors(512) == []
        trace = TraceGenerator(config, seed=0).generate()
        assert not any(event.tag.startswith("a2a_") for event in trace.events)


# ---------------------------------------------------------------------- #
# Trace level: conservation of the emitted event stream
# ---------------------------------------------------------------------- #
class TestTraceConservation:
    @pytest.mark.parametrize("case", _draw_configs(12, rng_seed=7))
    def test_dispatch_sizes_conserve_across_ep_traces(self, case):
        """Generating every EP rank's trace of one stage and inverting the
        all-to-all buffer sizes recovers the conserved routed load."""
        pipeline, expert, imbalance, _, seed = case
        factor = 1.0  # exact size inversion at hidden 512
        config = _moe_config(
            pipeline=pipeline, expert=expert, imbalance=imbalance, comm_factor=factor
        )
        per_token = int(factor * MOE_TINY.hidden_size * ACT_BYTES)
        traces = [
            TraceGenerator(config, seed=seed, rank=0, ep_rank=ep_rank).generate()
            for ep_rank in range(expert)
        ]
        recv_by_rank = [_a2a_sizes(trace, "a2a_dispatch_recv") for trace in traces]
        send_by_rank = [_a2a_sizes(trace, "a2a_dispatch_send") for trace in traces]
        executions = config.num_microbatches * MOE_TINY.num_layers // pipeline
        routed = config.micro_batch_size * MOE_TINY.seq_length * MOE_TINY.moe_top_k
        total_recv = sum(sum(sizes.values()) for sizes in recv_by_rank) // per_token
        total_send = sum(sum(sizes.values()) for sizes in send_by_rank) // per_token
        assert total_recv == executions * routed, case
        assert total_send == executions * routed, case
        # The combine pair mirrors dispatch execution by execution.
        for trace, recv in zip(traces, recv_by_rank):
            combine_send = sum(_a2a_sizes(trace, "a2a_combine_send").values())
            assert combine_send == sum(recv.values())

    def test_same_execution_consistent_across_ep_ranks(self):
        """Every EP rank's dispatch_recv of one layer execution is a slice of
        the same global draw: summing the slices per execution (not just over
        the whole trace) recovers the routed load."""
        config = _moe_config(expert=4, imbalance=0.8, comm_factor=1.0)
        per_token = MOE_TINY.hidden_size * ACT_BYTES
        routed = config.micro_batch_size * MOE_TINY.seq_length * MOE_TINY.moe_top_k
        sizes = [
            _a2a_sizes(
                TraceGenerator(config, seed=3, rank=0, ep_rank=ep_rank).generate(),
                "a2a_dispatch_recv",
            )
            for ep_rank in range(4)
        ]
        executions = set().union(*(set(rank_sizes) for rank_sizes in sizes))
        assert executions  # the MoE trace must contain dispatch events
        for execution in executions:
            total = sum(rank_sizes.get(execution, 0) for rank_sizes in sizes)
            assert total == routed * per_token, execution


# ---------------------------------------------------------------------- #
# Legacy equivalence: moe_comm_factor == 0 is the comm-free baseline trace
# ---------------------------------------------------------------------- #
class TestLegacyEquivalence:
    @pytest.mark.parametrize("case", _draw_configs(10, rng_seed=42))
    def test_zero_factor_has_no_comm_events(self, case):
        pipeline, expert, imbalance, _, seed = case
        config = _moe_config(
            pipeline=pipeline, expert=expert, imbalance=imbalance, comm_factor=0.0
        )
        trace = TraceGenerator(config, seed=seed).generate()
        assert not any(event.tag.startswith("a2a_") for event in trace.events)

    @pytest.mark.parametrize("case", _draw_configs(10, rng_seed=43))
    def test_stripping_comm_events_recovers_the_zero_factor_trace(self, case):
        """The transients are purely additive: removing the all-to-all events
        from a comm-enabled trace leaves the comm-free event sequence, byte
        for byte (modulo req_id/time renumbering)."""
        pipeline, expert, imbalance, comm_factor, seed = case
        comm_factor = comm_factor or 1.0
        with_comm = TraceGenerator(
            _moe_config(
                pipeline=pipeline, expert=expert, imbalance=imbalance,
                comm_factor=comm_factor,
            ),
            seed=seed,
        ).generate()
        without_comm = TraceGenerator(
            _moe_config(
                pipeline=pipeline, expert=expert, imbalance=imbalance, comm_factor=0.0
            ),
            seed=seed,
        ).generate()
        assert _event_keys(with_comm, drop_a2a=True) == _event_keys(
            without_comm, drop_a2a=False
        )
        assert with_comm.metadata.moe_comm_factor == comm_factor
        assert without_comm.metadata.moe_comm_factor == 0.0

    def test_zero_factor_digest_matches_default_config(self):
        """``moe_comm_factor=0`` and an untouched config generate
        byte-identical traces (the knob's default is the legacy behaviour)."""
        explicit = _moe_config(comm_factor=0.0)
        legacy = TrainingConfig(
            model=MOE_TINY,
            parallelism=explicit.parallelism,
            micro_batch_size=explicit.micro_batch_size,
            num_microbatches=explicit.num_microbatches,
            moe_imbalance=explicit.moe_imbalance,
        )
        assert (
            TraceGenerator(explicit, seed=5).generate().digest()
            == TraceGenerator(legacy, seed=5).generate().digest()
        )


# ---------------------------------------------------------------------- #
# Monotonicity: peak memory never decreases in moe_comm_factor
# ---------------------------------------------------------------------- #
class TestPeakMonotonicity:
    @pytest.mark.parametrize("case", _draw_configs(15, rng_seed=77))
    def test_peak_monotone_in_comm_factor(self, case):
        pipeline, expert, imbalance, _, seed = case
        peaks = []
        comm_peaks = []
        for factor in (0.0, 0.5, 1.0, 2.0):
            trace = TraceGenerator(
                _moe_config(
                    pipeline=pipeline, expert=expert, imbalance=imbalance,
                    comm_factor=factor,
                ),
                seed=seed,
            ).generate()
            peaks.append(trace.peak_allocated_bytes())
            comm_peaks.append(trace.comm_peak_bytes())
        assert peaks == sorted(peaks), (case, peaks)
        assert comm_peaks == sorted(comm_peaks), (case, comm_peaks)
        # A non-zero factor really adds live communication bytes.
        assert comm_peaks[-1] > comm_peaks[0], case

    def test_binding_rank_peak_strictly_exceeds_comm_free_baseline(self):
        """The acceptance property: with a skewed router and a non-zero comm
        factor, the binding EP rank's peak strictly exceeds the comm-free
        baseline job peak."""
        from repro.simulator.runner import run_job

        baseline = run_job(
            _moe_config(imbalance=0.6, comm_factor=0.0),
            "torch2.3",
            ranks="all",
            with_throughput=False,
        )
        with_comm = run_job(
            _moe_config(imbalance=0.6, comm_factor=1.0),
            "torch2.3",
            ranks="all",
            with_throughput=False,
        )
        assert with_comm.peak_allocated_gib > baseline.peak_allocated_gib
        assert with_comm.comm_peak_bytes > baseline.comm_peak_bytes
        binding = with_comm.binding_run
        baseline_same_rank = baseline.runs_by_rank()[with_comm.binding_rank]
        assert (
            binding.replay.metrics.peak_allocated_bytes
            > baseline_same_rank.replay.metrics.peak_allocated_bytes
        )


# ---------------------------------------------------------------------- #
# Surface: comm_peak_bytes reaches JobRun dicts and sweep rows
# ---------------------------------------------------------------------- #
class TestCommPeakSurfaces:
    def test_job_run_exposes_comm_peak(self):
        from repro.simulator.runner import run_job

        job = run_job(
            _moe_config(imbalance=0.6, comm_factor=1.0),
            "torch2.3",
            ranks="all",
            with_throughput=False,
        )
        assert job.comm_peak_bytes > 0
        assert job.as_dict()["comm_peak_bytes"] == job.comm_peak_bytes
        assert all(run.as_dict()["comm_peak_bytes"] >= 0 for run in job.class_runs)
        assert job.comm_peak_bytes == max(run.comm_peak_bytes for run in job.class_runs)

    def test_sweep_rows_carry_comm_peak_and_comm_axis_label(self):
        from repro.sweep import SweepSpec, run_sweep

        spec = SweepSpec.from_dict(
            {
                "name": "comm-fuzz",
                "model": "moe-tiny",
                "parallelism": {
                    "pipeline_parallel": 2, "data_parallel": 4, "expert_parallel": 4,
                },
                "base": {
                    "num_microbatches": 2, "micro_batch_size": 1, "moe_imbalance": 0.6,
                },
                "grid": {"moe_comm_factor": [0.0, 1.0]},
                "allocators": ["torch2.3"],
                "ranks": "all",
            }
        )
        result = run_sweep(spec, jobs=1)
        assert [row["config"] for row in result.rows] == ["comm=0.0", "comm=1.0"]
        comm_free, comm_on = result.rows
        assert comm_on["comm_peak_bytes"] > comm_free["comm_peak_bytes"] >= 0
        assert comm_on["allocated_gib"] > comm_free["allocated_gib"]
