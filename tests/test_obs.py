"""Tests for repro.obs: tracer, sinks, metrics, progress, summarize, wiring.

The integration layer runs small real sweeps; the differential test pins the
headline guarantee of the observability PR -- enabling tracing must not
change a single result row.
"""

from __future__ import annotations

import io
import json
import pickle
import time
from dataclasses import replace

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.obs import (
    OBS_FORMAT_VERSION,
    BufferSink,
    ChromeTraceSink,
    HistogramStat,
    MetricsRegistry,
    NDJSONSink,
    ProgressReporter,
    Tracer,
    load_events,
    meta_event,
    summarize_events,
    summarize_file,
    validate_event,
)
from repro.obs.progress import _format_eta
from repro.obs.tracer import (
    _CONTEXT,
    absorb,
    counter,
    current_tracer,
    install,
    is_enabled,
    shutdown,
    span,
    worker_observation,
    worker_spec,
)
from repro.simulator import runner
from repro.sweep import SweepCache, SweepPointError, SweepSpec, run_sweep
from repro.sweep.engine import execute_point
from repro.workloads.tracegen import config_fingerprint


@pytest.fixture(autouse=True)
def _obs_isolation():
    """No test leaves a tracer installed or runner caches configured."""
    yield
    shutdown()
    runner.set_persistent_cache(None)
    runner.set_default_jobs(1)
    runner.clear_trace_cache()


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _tiny_spec(**overrides) -> SweepSpec:
    data = {
        "name": "obs-tiny",
        "model": "gpt2-345m",
        "parallelism": {"pipeline_parallel": 4, "data_parallel": 2},
        "base": {"num_microbatches": 2},
        "grid": {"micro_batch_size": [1, 2]},
        "allocators": ["torch2.3", "stalloc"],
        "scale": 0.25,
    }
    data.update(overrides)
    return SweepSpec.from_dict(data)


# ---------------------------------------------------------------------- #
# Spans (fake clock)
# ---------------------------------------------------------------------- #
class TestSpans:
    def test_nesting_parenting_and_timing(self):
        clock = FakeClock()
        buffer = BufferSink()
        install(Tracer(sinks=[buffer], clock=clock))
        with span("sweep.run", spec="tiny") as outer:
            clock.advance(1.0)
            with span("sweep.point", point=0):
                clock.advance(0.25)
            outer.set(points=1)
        events = buffer.events
        assert [event["name"] for event in events] == ["sweep.point", "sweep.run"]
        inner, outer_event = events
        assert inner["parent"] == outer_event["span"]
        assert inner["depth"] == 1 and outer_event["depth"] == 0
        assert outer_event["parent"] is None
        assert inner["dur"] == pytest.approx(0.25)
        assert outer_event["dur"] == pytest.approx(1.25)
        assert inner["attrs"] == {"point": 0}
        assert outer_event["attrs"] == {"spec": "tiny", "points": 1}

    def test_siblings_share_a_parent(self):
        buffer = BufferSink()
        install(Tracer(sinks=[buffer], clock=FakeClock()))
        with span("root"):
            with span("a"):
                pass
            with span("b"):
                pass
        by_name = {event["name"]: event for event in buffer.events}
        assert by_name["a"]["parent"] == by_name["b"]["parent"] == by_name["root"]["span"]
        assert by_name["a"]["span"] != by_name["b"]["span"]

    def test_exception_records_error_attr_and_propagates(self):
        buffer = BufferSink()
        install(Tracer(sinks=[buffer], clock=FakeClock()))
        with pytest.raises(ValueError, match="boom"):
            with span("job.run"):
                raise ValueError("boom")
        assert buffer.events[0]["attrs"]["error"] == "ValueError: boom"

    def test_disabled_span_is_shared_noop(self):
        assert not is_enabled()
        first, second = span("a", x=1), span("b")
        assert first is second  # one shared object, no allocation per call
        with first as entered:
            entered.set(anything=1)
        counter("nope")
        obs.observe("nope", 1.0)
        obs.gauge("nope", 1.0)
        assert current_tracer() is None

    def test_metrics_helpers_reach_installed_registry(self):
        install(Tracer(sinks=[], clock=FakeClock()))
        counter("cache.hit")
        counter("cache.hit", 2)
        obs.gauge("depth", 7)
        obs.observe("rate", 10.0)
        obs.observe("rate", 30.0)
        snapshot = current_tracer().metrics.snapshot()
        assert snapshot["counters"] == {"cache.hit": 3}
        assert snapshot["gauges"] == {"depth": 7}
        assert snapshot["histograms"]["rate"]["mean"] == pytest.approx(20.0)


# ---------------------------------------------------------------------- #
# Metrics registry
# ---------------------------------------------------------------------- #
class TestMetrics:
    def test_histogram_stat_merge(self):
        left, right = HistogramStat(), HistogramStat()
        for value in (1.0, 3.0):
            left.observe(value)
        right.observe(10.0)
        left.merge(right.as_dict())
        assert left.count == 3
        assert left.min == 1.0 and left.max == 10.0
        assert left.mean == pytest.approx(14.0 / 3)

    def test_merge_is_additive_for_counters_last_write_for_gauges(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.count("rows", 2)
        parent.gauge("depth", 1)
        worker.count("rows", 3)
        worker.gauge("depth", 9)
        worker.observe("rate", 5.0)
        parent.merge(worker.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["rows"] == 5
        assert snapshot["gauges"]["depth"] == 9
        assert snapshot["histograms"]["rate"]["count"] == 1

    def test_empty_registry_is_falsy(self):
        registry = MetricsRegistry()
        assert not registry
        registry.count("x")
        assert registry


# ---------------------------------------------------------------------- #
# NDJSON schema: round-trip and version guard
# ---------------------------------------------------------------------- #
class TestNDJSONSchema:
    def _trace_to(self, path):
        tracer = Tracer(sinks=[NDJSONSink(path, pid=11, started=1000.0)], clock=FakeClock())
        install(tracer)
        with span("sweep.run"):
            with span("sweep.point", point=0):
                counter("sweep.rows_done")
        shutdown()

    def test_round_trip(self, tmp_path):
        path = tmp_path / "obs.ndjson"
        self._trace_to(path)
        events = load_events(path)
        kinds = [event["type"] for event in events]
        assert kinds == ["meta", "span", "span", "metrics"]
        meta = events[0]
        assert meta["obs_format_version"] == OBS_FORMAT_VERSION
        assert meta["pid"] == 11 and meta["started"] == 1000.0
        # Every line is compact single-line JSON.
        for line in path.read_text().splitlines():
            assert json.loads(line)

    def test_validate_rejects_unknown_type_and_missing_fields(self):
        with pytest.raises(ValueError, match="unknown obs event type"):
            validate_event({"type": "nope"})
        with pytest.raises(ValueError, match="missing required field"):
            validate_event({"type": "span", "name": "x"})
        with pytest.raises(ValueError, match="wrong type"):
            validate_event(dict(meta_event(1, 0.0), pid="one"))
        with pytest.raises(ValueError, match="wrong type"):
            validate_event(dict(meta_event(1, 0.0), pid=True))  # bools are not ints here

    def test_version_guard(self, tmp_path):
        assert validate_event(meta_event(1, 0.0)) is not None
        stale = dict(meta_event(1, 0.0), obs_format_version=OBS_FORMAT_VERSION + 1)
        with pytest.raises(ValueError, match="unsupported obs_format_version"):
            validate_event(stale)
        path = tmp_path / "stale.ndjson"
        path.write_text(json.dumps(stale) + "\n")
        with pytest.raises(ValueError, match="stale.ndjson:1"):
            load_events(path)

    def test_file_without_meta_header_rejected(self, tmp_path):
        path = tmp_path / "headless.ndjson"
        path.write_text("")
        with pytest.raises(ValueError, match="no 'meta' header"):
            load_events(path)

    def test_invalid_json_names_the_line(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text(json.dumps(meta_event(1, 0.0)) + "\nnot json\n")
        with pytest.raises(ValueError, match="bad.ndjson:2"):
            load_events(path)

    def test_negative_duration_rejected(self):
        event = {
            "type": "span", "name": "x", "span": 1, "parent": None,
            "pid": 1, "depth": 0, "start": 0.0, "dur": -0.5, "attrs": {},
        }
        with pytest.raises(ValueError, match="'dur' must be >= 0"):
            validate_event(event)


# ---------------------------------------------------------------------- #
# Chrome trace sink
# ---------------------------------------------------------------------- #
class TestChromeTraceSink:
    def test_writes_perfetto_compatible_container(self, tmp_path):
        path = tmp_path / "trace.json"
        clock = FakeClock(500.0)
        install(Tracer(sinks=[ChromeTraceSink(path)], clock=clock))
        with span("sweep.run"):
            clock.advance(0.5)
            with span("replay.trace"):
                clock.advance(0.25)
        shutdown()
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["obs_format_version"] == OBS_FORMAT_VERSION
        assert payload["otherData"]["spans"] == 2
        slices = [event for event in payload["traceEvents"] if event["ph"] == "X"]
        by_name = {event["name"]: event for event in slices}
        assert by_name["sweep.run"]["cat"] == "sweep"
        assert by_name["replay.trace"]["cat"] == "replay"
        # Rebased onto the earliest span: the root starts at 0 us.
        assert by_name["sweep.run"]["ts"] == pytest.approx(0.0)
        assert by_name["replay.trace"]["ts"] == pytest.approx(0.5e6)
        assert by_name["sweep.run"]["dur"] == pytest.approx(0.75e6)
        thread_names = [
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert any(name.startswith("main (pid ") for name in thread_names)


# ---------------------------------------------------------------------- #
# Worker protocol: spec / observation / absorb
# ---------------------------------------------------------------------- #
class TestWorkerProtocol:
    def test_spec_none_when_disabled(self):
        assert worker_spec() is None
        install(Tracer(sinks=[], clock=FakeClock()))
        assert worker_spec() == {"obs_format_version": OBS_FORMAT_VERSION}

    def test_observation_with_none_spec_is_inert(self):
        with worker_observation(None) as observation:
            assert not is_enabled()
        assert observation.delta is None

    def test_absorb_reparents_worker_roots(self):
        clock = FakeClock()
        buffer = BufferSink()
        parent = Tracer(sinks=[buffer], clock=clock)
        install(parent)
        with span("sweep.run") as run_span:
            # Simulate the worker side in-process: its spans buffer into a
            # delta instead of reaching the parent's sinks directly.
            with worker_observation(worker_spec()) as observation:
                with span("sweep.point"):
                    with span("job.run"):
                        counter("cache.miss", 3)
            absorb(observation.delta)
        names = [event["name"] for event in buffer.events]
        assert names == ["job.run", "sweep.point", "sweep.run"]
        point = next(e for e in buffer.events if e["name"] == "sweep.point")
        job = next(e for e in buffer.events if e["name"] == "job.run")
        # The worker's root was re-parented under the parent's open span.
        assert point["parent"] == run_span.span_id
        assert point["parent_pid"] == parent.pid
        assert point["depth"] == 1 and job["depth"] == 2
        # The worker-internal edge is untouched (no cross-process parent).
        assert job["parent"] == point["span"] and "parent_pid" not in job
        assert parent.metrics.snapshot()["counters"] == {"cache.miss": 3}

    def test_observation_resets_inherited_span_context(self):
        """Fork-started workers inherit the parent's open-span context.

        Regression test: without the reset, the worker's first span adopts a
        parent id minted by another process -- possibly its own fresh id,
        yielding a self-referencing span that breaks summarize.
        """
        install(Tracer(sinks=[BufferSink()], clock=FakeClock()))
        with span("sweep.run"):
            assert _CONTEXT.get() is not None  # what a forked child would see
            with worker_observation(worker_spec()) as observation:
                with span("sweep.point"):
                    pass
            assert _CONTEXT.get() is not None  # restored after the block
        (event,) = observation.delta["events"]
        assert event["parent"] is None and event["depth"] == 0
        assert event["span"] != event.get("parent")

    def test_span_ids_survive_tracer_reinstall(self):
        """Reused pool workers install a fresh tracer per task; (pid, span)
        keys must stay unique across tasks in one process."""
        seen = set()
        for _ in range(2):
            with worker_observation({"obs_format_version": OBS_FORMAT_VERSION}) as observation:
                with span("sweep.point"):
                    pass
            seen.add(observation.delta["events"][0]["span"])
        assert len(seen) == 2

    def test_absorb_is_noop_when_disabled(self):
        absorb({"events": [{"type": "span"}], "metrics": {}})  # must not raise


# ---------------------------------------------------------------------- #
# Progress reporter
# ---------------------------------------------------------------------- #
class TestProgress:
    def test_pipe_mode_emits_full_lines_on_jumps(self):
        stream = io.StringIO()
        clock = FakeClock(0.0)
        progress = ProgressReporter(0, label="sweep", stream=stream, clock=clock)
        progress.total = 4  # deferred total, as the CLI wires it
        progress.update(cache="50% hit")
        clock.advance(10.0)
        progress.update()
        progress.finish()
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("sweep: 1/4 rows (25%)")
        assert "ETA" in lines[0] and "cache 50% hit" in lines[0]
        assert lines[-1].startswith("sweep: 2/4 rows (50%)")

    def test_final_line_reports_elapsed(self):
        stream = io.StringIO()
        clock = FakeClock(0.0)
        progress = ProgressReporter(2, stream=stream, clock=clock)
        progress.update()
        clock.advance(3.0)
        progress.update()
        progress.finish()
        assert "2/2 rows (100%)" in stream.getvalue().splitlines()[-1]
        assert "3.0s" in stream.getvalue().splitlines()[-1]

    def test_disabled_and_zero_total_write_nothing(self):
        stream = io.StringIO()
        progress = ProgressReporter(5, stream=stream, enabled=False)
        progress.update()
        progress.finish()
        assert stream.getvalue() == ""
        silent = ProgressReporter(0, stream=stream)
        silent.update()
        silent.finish()
        assert stream.getvalue() == ""

    def test_format_eta(self):
        assert _format_eta(0) == "0:00"
        assert _format_eta(75) == "1:15"
        assert _format_eta(3725) == "1:02:05"
        assert _format_eta(float("inf")) == "--:--"
        assert _format_eta(float("nan")) == "--:--"


# ---------------------------------------------------------------------- #
# Summarize
# ---------------------------------------------------------------------- #
class TestSummarize:
    def _span(self, span_id, name, *, parent=None, pid=1, depth=0, start=0.0, dur=1.0, **extra):
        return {
            "type": "span", "name": name, "span": span_id, "parent": parent,
            "pid": pid, "depth": depth, "start": start, "dur": dur, "attrs": {},
            **extra,
        }

    def test_paths_aggregate_by_chain_not_bare_name(self):
        events = [
            meta_event(1, 0.0),
            self._span(1, "sweep.run", start=0.0, dur=4.0),
            self._span(2, "replay.trace", parent=1, depth=1, start=0.5, dur=1.0),
            self._span(3, "search.run", start=10.0, dur=2.0),
            self._span(4, "replay.trace", parent=3, depth=1, start=10.5, dur=0.5),
        ]
        summary = summarize_events(events)
        assert summary.spans == 4
        under_sweep = summary.stat("sweep.run", "replay.trace")
        under_search = summary.stat("search.run", "replay.trace")
        assert under_sweep.total_seconds == pytest.approx(1.0)
        assert under_search.total_seconds == pytest.approx(0.5)
        # Two roots, disjoint intervals -> wall time is their sum.
        assert summary.wall_seconds == pytest.approx(6.0)
        assert summary.stat("sweep.run").self_seconds == pytest.approx(3.0)

    def test_cross_process_parent_resolution(self):
        events = [
            meta_event(1, 0.0),
            self._span(1, "sweep.run", pid=1, dur=3.0),
            self._span(1, "sweep.point", parent=1, parent_pid=1, pid=77, depth=1, dur=1.0),
        ]
        summary = summarize_events(events)
        assert summary.stat("sweep.run", "sweep.point").count == 1

    def test_parent_cycle_degrades_instead_of_recursing(self):
        events = [
            meta_event(1, 0.0),
            self._span(1, "a", parent=2, dur=1.0),
            self._span(2, "b", parent=1, dur=1.0),
        ]
        summary = summarize_events(events)  # must not RecursionError
        assert summary.spans == 2
        assert {stat.path[0] for stat in summary.tree} <= {"a", "b"}

    def test_self_referencing_span_is_a_root(self):
        events = [meta_event(1, 0.0), self._span(1, "loop", parent=1, dur=2.0)]
        summary = summarize_events(events)
        assert summary.stat("loop").count == 1
        assert summary.wall_seconds == pytest.approx(2.0)

    def test_wall_seconds_unions_overlapping_roots(self):
        events = [
            meta_event(1, 0.0),
            self._span(1, "a", start=0.0, dur=2.0),
            self._span(2, "b", start=1.0, dur=2.0),
        ]
        assert summarize_events(events).wall_seconds == pytest.approx(3.0)

    def test_metrics_lines_merge(self):
        events = [
            meta_event(1, 0.0),
            {"type": "metrics", "pid": 1, "time": 1.0,
             "counters": {"cache.hit": 2}, "gauges": {}, "histograms": {}},
            {"type": "metrics", "pid": 2, "time": 2.0,
             "counters": {"cache.hit": 3}, "gauges": {}, "histograms": {}},
        ]
        summary = summarize_events(events)
        assert summary.metrics.counters["cache.hit"] == 5

    def test_text_and_dict_renderings(self):
        events = [
            meta_event(1, 0.0),
            self._span(1, "sweep.run", dur=1.0),
            {"type": "metrics", "pid": 1, "time": 1.0,
             "counters": {"rows": 4}, "gauges": {"depth": 2},
             "histograms": {"rate": {"count": 1, "total": 5.0, "min": 5.0,
                                     "max": 5.0, "mean": 5.0}}},
        ]
        summary = summarize_events(events)
        text = summary.to_text()
        assert "sweep.run" in text and "counters:" in text and "rate" in text
        payload = summary.as_dict()
        assert payload["spans"] == 1
        assert payload["tree"][0]["path"] == ["sweep.run"]
        assert payload["metrics"]["counters"]["rows"] == 4
        assert json.loads(json.dumps(payload)) == payload  # JSON-safe


# ---------------------------------------------------------------------- #
# No-op overhead
# ---------------------------------------------------------------------- #
class TestOverhead:
    def test_disabled_spans_are_near_free(self):
        assert not is_enabled()
        iterations = 100_000
        started = time.perf_counter()
        for _ in range(iterations):
            with span("hot.loop"):
                pass
            counter("hot.counter")
        elapsed = time.perf_counter() - started
        # Generous bound (~30x observed) so slow CI never flakes: the point
        # is catching a regression to per-call allocation or I/O.
        assert elapsed < 2.0, f"{iterations} disabled spans took {elapsed:.3f}s"


# ---------------------------------------------------------------------- #
# Sweep integration: aggregation, wall time, differential
# ---------------------------------------------------------------------- #
class TestSweepIntegration:
    def test_parallel_sweep_aggregates_one_tree(self, tmp_path):
        spec = _tiny_spec()
        path = tmp_path / "obs.ndjson"
        obs.configure(ndjson_path=path)
        result = run_sweep(spec, jobs=2, cache_dir=str(tmp_path / "cache"))
        shutdown()
        summary = summarize_file(path)  # validates every line on load
        counters = summary.metrics.counters
        assert counters["sweep.rows_done"] == len(result.rows) == 4
        assert counters["cache.miss"] > 0
        run_stat = summary.stat("sweep.run")
        assert run_stat is not None and run_stat.count == 1
        points = summary.stat("sweep.run", "sweep.point")
        assert points is not None and points.count == 4
        # Worker spans were absorbed: some spans come from other pids but
        # every one of them resolved under the parent's root.
        events = load_events(path)
        pids = {event["pid"] for event in events if event["type"] == "span"}
        assert len(pids) > 1
        assert all(stat.path[0] == "sweep.run" for stat in summary.tree)
        # sweep.run is the only root, so observed wall time is its duration;
        # it must agree with the engine's own elapsed measurement.
        assert summary.wall_seconds == pytest.approx(
            result.elapsed_seconds, rel=0.05, abs=0.05
        )

    def test_fully_cached_rerun_counts_hits(self, tmp_path):
        spec = _tiny_spec()
        cache_dir = str(tmp_path / "cache")
        run_sweep(spec, jobs=1, cache_dir=cache_dir)
        path = tmp_path / "obs.ndjson"
        obs.configure(ndjson_path=path)
        result = run_sweep(spec, jobs=1, cache_dir=cache_dir)
        shutdown()
        assert all(row["cached"] for row in result.rows)
        summary = summarize_file(path)
        assert summary.metrics.counters["cache.hit"] == 4
        assert summary.metrics.counters["sweep.rows_done"] == 4
        assert "cache.miss" not in summary.metrics.counters

    @staticmethod
    def _comparable(rows):
        # elapsed_seconds is wall-clock and cached depends on run order;
        # everything else must match to the byte.
        cleaned = [
            {k: v for k, v in row.items() if k not in ("elapsed_seconds", "cached")}
            for row in rows
        ]
        return json.dumps(cleaned, sort_keys=True)

    def test_observability_does_not_change_results(self, tmp_path):
        spec = _tiny_spec()
        baseline = run_sweep(spec, jobs=2, cache_dir=str(tmp_path / "cache-off"))
        obs.configure(
            ndjson_path=tmp_path / "obs.ndjson", chrome_path=tmp_path / "trace.json"
        )
        traced = run_sweep(spec, jobs=2, cache_dir=str(tmp_path / "cache-on"))
        shutdown()
        assert self._comparable(traced.rows) == self._comparable(baseline.rows)

    def test_replay_histogram_recorded(self, tmp_path):
        spec = _tiny_spec(grid={"micro_batch_size": [1]}, allocators=["torch2.3"])
        path = tmp_path / "obs.ndjson"
        obs.configure(ndjson_path=path)
        run_sweep(spec, jobs=1, cache_dir=None)
        shutdown()
        stat = summarize_file(path).metrics.histograms["replay.events_per_sec"]
        assert stat.count > 0 and stat.max > 0


# ---------------------------------------------------------------------- #
# Cache stats
# ---------------------------------------------------------------------- #
class TestCacheStats:
    def test_hit_rate_and_eviction_accounting(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        key = cache.result_key("f" * 40, {"allocator": "stalloc"})
        assert cache.load_result(key) is None  # miss
        cache.store_result(key, {"status": "ok"})
        assert cache.load_result(key) == {"status": "ok"}  # hit
        report = cache.cache_stats()
        assert report["hits"] == 1 and report["misses"] == 1
        assert report["hit_rate"] == pytest.approx(0.5)
        assert report["evicted_entries"] == 0
        pruned = cache.prune(max_bytes=0)
        report = cache.cache_stats()
        assert report["evicted_entries"] == pruned["lru_removed"] + pruned["stale_removed"] > 0
        assert report["evicted_bytes"] > 0

    def test_cache_counters_emitted_when_tracing(self, tmp_path):
        install(Tracer(sinks=[], clock=FakeClock()))
        cache = SweepCache(str(tmp_path))
        key = cache.result_key("f" * 40, {"allocator": "stalloc"})
        cache.load_result(key)
        cache.store_result(key, {"status": "ok"})
        cache.load_result(key)
        counters = current_tracer().metrics.snapshot()["counters"]
        assert counters == {"cache.hit": 1, "cache.miss": 1}


# ---------------------------------------------------------------------- #
# Per-point failure reporting
# ---------------------------------------------------------------------- #
class _BadSpec:
    """Duck-typed spec whose points fail validation inside run_job."""

    name = "bad-spec"

    def __init__(self, points):
        self._points = points

    def expand(self):
        return self._points


def _bad_points(count=2):
    points = _tiny_spec().expand()[:count]
    return [replace(point, device_capacity_gib=-1.0) for point in points]


class TestSweepPointError:
    def test_message_names_point_and_trace(self):
        error = SweepPointError("pp=4/mbs=2", "abcdef0123456789", "ValueError: nope")
        assert "pp=4/mbs=2" in str(error)
        assert "abcdef012345" in str(error)  # 12-char fingerprint prefix
        assert error.cause == "ValueError: nope"

    def test_pickle_round_trip(self):
        error = SweepPointError("label", "f" * 40, "ValueError: boom")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, SweepPointError)
        assert (clone.label, clone.fingerprint, clone.cause) == (
            error.label, error.fingerprint, error.cause,
        )
        assert str(clone) == str(error)

    def test_serial_path_wraps_run_job_failures(self):
        point = _bad_points(1)[0]
        fingerprint = config_fingerprint(point.config, seed=point.seed, scale=point.scale)
        with pytest.raises(SweepPointError) as excinfo:
            execute_point(point, None)
        assert excinfo.value.label == point.row_label
        assert excinfo.value.fingerprint == fingerprint
        assert "ValueError" in excinfo.value.cause
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_worker_path_ships_labeled_error_across_pool(self):
        with pytest.raises(SweepPointError, match="sweep point"):
            run_sweep(_BadSpec(_bad_points(2)), jobs=2, cache_dir=None)


# ---------------------------------------------------------------------- #
# configure() and the CLI wiring
# ---------------------------------------------------------------------- #
class TestCLIWiring:
    def test_configure_none_installs_nothing(self):
        assert obs.configure() is None
        assert not is_enabled()

    def test_configure_installs_and_shutdown_uninstalls(self, tmp_path):
        tracer = obs.configure(ndjson_path=tmp_path / "obs.ndjson")
        assert tracer is current_tracer()
        shutdown()
        assert not is_enabled()
        assert load_events(tmp_path / "obs.ndjson")[0]["type"] == "meta"

    def test_sweep_then_summarize_round_trip(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-tiny",
            "model": "gpt2-345m",
            "parallelism": {"pipeline_parallel": 2, "data_parallel": 2},
            "base": {"num_microbatches": 2},
            "grid": {"micro_batch_size": [1]},
            "allocators": ["torch2.3"],
            "scale": 0.25,
        }))
        obs_path = tmp_path / "obs.ndjson"
        rc = cli_main([
            "sweep", str(spec_path),
            "--cache-dir", str(tmp_path / "cache"),
            "--obs-out", str(obs_path),
            "--no-progress",
        ])
        assert rc == 0
        assert not is_enabled()  # the CLI shut the tracer down
        capsys.readouterr()
        assert cli_main(["obs", "summarize", str(obs_path)]) == 0
        text = capsys.readouterr().out
        assert "obs summary" in text and "sweep.run" in text
        assert cli_main(["obs", "summarize", str(obs_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["sweep.rows_done"] == 1

    def test_summarize_missing_file_fails_cleanly(self, tmp_path, capsys):
        rc = cli_main(["obs", "summarize", str(tmp_path / "missing.ndjson")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
