"""Tests for the workload substrate: models, parallelism, memory model, schedules, traces."""

from __future__ import annotations

import pytest

from repro.core.events import PhaseKind, TensorCategory
from repro.workloads.memory_model import MemoryModel, TensorSpec
from repro.workloads.models import MODEL_REGISTRY, get_model
from repro.workloads.moe import ExpertRouter
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.schedule import (
    build_schedule,
    interleaved_virtual_pipeline,
    one_f_one_b,
    peak_in_flight_microbatches,
)
from repro.workloads.tracegen import TraceGenerator
from repro.workloads.training import OPTIMIZATION_PRESETS, TrainingConfig, preset_config


class TestModelConfigs:
    def test_registry_contains_paper_models(self):
        for name in (
            "gpt2-345m",
            "llama2-7b",
            "qwen2.5-7b",
            "qwen2.5-14b",
            "qwen2.5-32b",
            "qwen2.5-72b",
            "qwen1.5-moe-a2.7b",
        ):
            assert name in MODEL_REGISTRY

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError):
            get_model("gpt-5")

    @pytest.mark.parametrize(
        "name, low, high",
        [
            ("gpt2-345m", 0.3e9, 0.5e9),
            ("llama2-7b", 6e9, 8e9),
            ("qwen2.5-14b", 12e9, 17e9),
            ("qwen2.5-72b", 65e9, 85e9),
            ("qwen1.5-moe-a2.7b", 12e9, 20e9),
        ],
    )
    def test_parameter_counts_in_expected_range(self, name, low, high):
        assert low <= get_model(name).total_params() <= high

    def test_moe_active_params_below_total(self):
        moe = get_model("qwen1.5-moe-a2.7b")
        assert moe.is_moe
        assert moe.active_params() < moe.total_params()

    def test_dense_active_equals_total(self):
        dense = get_model("llama2-7b")
        assert dense.active_params() == dense.total_params()

    def test_invalid_head_divisibility(self):
        with pytest.raises(ValueError):
            get_model("llama2-7b").__class__(
                name="bad", hidden_size=100, num_layers=2, num_attention_heads=3,
                ffn_hidden_size=400, vocab_size=1000,
            )


class TestParallelism:
    def test_num_gpus(self):
        assert ParallelismConfig(2, 4, 2).num_gpus == 16

    def test_layers_per_rank(self):
        assert ParallelismConfig(1, 4, 1).layers_per_rank(32) == 8

    def test_layers_per_chunk(self):
        par = ParallelismConfig(1, 4, 1, virtual_pipeline_chunks=2)
        assert par.layers_per_chunk(32) == 4

    def test_indivisible_layers_rejected(self):
        with pytest.raises(ValueError):
            ParallelismConfig(1, 3, 1).layers_per_rank(32)

    def test_vpp_requires_pipeline(self):
        with pytest.raises(ValueError):
            ParallelismConfig(1, 1, 1, virtual_pipeline_chunks=2)

    def test_degrees_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelismConfig(0, 1, 1)

    def test_describe(self):
        par = ParallelismConfig(2, 4, 2, expert_parallel=2, virtual_pipeline_chunks=2)
        label = par.describe()
        assert "TP2" in label and "PP4" in label and "EP2" in label and "VPP2" in label


class TestTrainingConfig:
    def test_tokens_accounting(self, tiny_dense_config):
        config = tiny_dense_config
        assert config.tokens_per_microbatch == config.micro_batch_size * config.sequence_length
        assert config.tokens_per_iteration == (
            config.tokens_per_microbatch
            * config.num_microbatches
            * config.parallelism.data_parallel
        )

    def test_invalid_zero_stage(self):
        with pytest.raises(ValueError):
            TrainingConfig(model=get_model("gpt2-345m"), zero_stage=5)

    def test_invalid_framework(self):
        with pytest.raises(ValueError):
            TrainingConfig(model=get_model("gpt2-345m"), framework="jax")

    def test_presets_exist(self):
        assert set(OPTIMIZATION_PRESETS) == {"Naive", "R", "V", "VR", "ZR", "ZOR"}

    def test_preset_config_recompute(self):
        config = preset_config(
            get_model("gpt2-345m"),
            "R",
            parallelism=ParallelismConfig(1, 4, 2),
            micro_batch_size=2,
        )
        assert config.recompute and config.label == "R"

    def test_preset_config_virtual_pipeline(self):
        config = preset_config(
            get_model("gpt2-345m"),
            "VR",
            parallelism=ParallelismConfig(1, 4, 2),
            micro_batch_size=2,
        )
        assert config.parallelism.virtual_pipeline_chunks == 2
        assert config.recompute

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            preset_config(get_model("gpt2-345m"), "X", parallelism=ParallelismConfig(), micro_batch_size=1)

    def test_with_override(self, tiny_dense_config):
        changed = tiny_dense_config.with_(recompute=True)
        assert changed.recompute and not tiny_dense_config.recompute


class TestMemoryModel:
    def test_tensor_spec_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TensorSpec("x", 0, TensorCategory.ACTIVATION)

    def test_persistent_inventory_covers_all_layers(self, tiny_dense_config):
        memory = MemoryModel(tiny_dense_config)
        layers = tiny_dense_config.parallelism.layers_per_rank(tiny_dense_config.model.num_layers)
        specs = memory.persistent_tensors()
        weight_specs = [s for s in specs if s.category is TensorCategory.WEIGHT and s.tag.startswith("layer")]
        assert len(weight_specs) == layers

    def test_sizes_are_512_aligned(self, tiny_dense_config):
        memory = MemoryModel(tiny_dense_config)
        for spec in memory.persistent_tensors() + memory.saved_activation_tensors():
            assert spec.size % 512 == 0

    def test_tensor_parallel_shrinks_activations(self):
        base = TrainingConfig(model=get_model("llama2-7b"), micro_batch_size=1)
        tp2 = TrainingConfig(
            model=get_model("llama2-7b"),
            parallelism=ParallelismConfig(tensor_parallel=2, pipeline_parallel=1, data_parallel=1),
            micro_batch_size=1,
        )
        size_base = sum(s.size for s in MemoryModel(base).saved_activation_tensors())
        size_tp2 = sum(s.size for s in MemoryModel(tp2).saved_activation_tensors())
        assert size_tp2 < size_base

    def test_distributed_optimizer_shards_states(self, tiny_dense_config):
        plain = MemoryModel(tiny_dense_config)
        sharded = MemoryModel(tiny_dense_config.with_(zero_stage=1))
        assert sharded.layer_optimizer_bytes() < plain.layer_optimizer_bytes()

    def test_recompute_checkpoint_smaller_than_full(self, tiny_dense_config):
        memory = MemoryModel(tiny_dense_config)
        full = sum(s.size for s in memory.saved_activation_tensors())
        checkpoint = sum(s.size for s in memory.recompute_checkpoint_tensors())
        assert checkpoint < full / 4

    def test_expert_tensors_scale_with_tokens(self, tiny_moe_config):
        memory = MemoryModel(tiny_moe_config)
        small = sum(s.size for s in memory.expert_tensors(0, 128))
        large = sum(s.size for s in memory.expert_tensors(0, 1024))
        assert large > small

    def test_expert_tensors_empty_for_zero_tokens(self, tiny_moe_config):
        assert MemoryModel(tiny_moe_config).expert_tensors(0, 0) == []

    def test_saved_bytes_per_microbatch_drops_with_recompute(self, tiny_dense_config):
        plain = MemoryModel(tiny_dense_config)
        recompute = MemoryModel(tiny_dense_config.with_(recompute=True))
        assert recompute.saved_bytes_per_microbatch() < plain.saved_bytes_per_microbatch()


class TestSchedules:
    def test_1f1b_phase_counts(self):
        phases = one_f_one_b(4, 8)
        forwards = [p for p in phases if p.kind is PhaseKind.FORWARD]
        backwards = [p for p in phases if p.kind is PhaseKind.BACKWARD]
        assert len(forwards) == len(backwards) == 8

    def test_1f1b_backward_follows_forward(self):
        phases = one_f_one_b(2, 6)
        seen_forward: set[int] = set()
        for phase in phases:
            if phase.kind is PhaseKind.FORWARD:
                seen_forward.add(phase.microbatch)
            else:
                assert phase.microbatch in seen_forward

    def test_1f1b_in_flight_bound(self):
        phases = one_f_one_b(4, 16)
        in_flight = peak = 0
        for phase in phases:
            in_flight += 1 if phase.kind is PhaseKind.FORWARD else -1
            peak = max(peak, in_flight)
        assert peak == 4

    def test_interleaved_covers_all_units(self):
        phases = interleaved_virtual_pipeline(2, 8, 2)
        forwards = {(p.microbatch, p.chunk) for p in phases if p.kind is PhaseKind.FORWARD}
        backwards = {(p.microbatch, p.chunk) for p in phases if p.kind is PhaseKind.BACKWARD}
        assert forwards == backwards
        assert len(forwards) == 16

    def test_interleaved_holds_more_in_flight(self):
        plain = one_f_one_b(2, 8)
        interleaved = interleaved_virtual_pipeline(2, 8, 2)

        def peak(phases):
            live = best = 0
            for phase in phases:
                live += 1 if phase.kind is PhaseKind.FORWARD else -1
                best = max(best, live)
            return best

        assert peak(interleaved) > peak(plain)

    def test_build_schedule_brackets(self):
        schedule = build_schedule(ParallelismConfig(1, 2, 1), 4)
        assert schedule[0].kind is PhaseKind.INIT
        assert schedule[-1].kind is PhaseKind.OPTIMIZER

    def test_invalid_schedule_args(self):
        with pytest.raises(ValueError):
            one_f_one_b(0, 4)

    def test_peak_in_flight_helper(self):
        par = ParallelismConfig(1, 4, 1, virtual_pipeline_chunks=2)
        assert peak_in_flight_microbatches(par, 16) == 8


class TestExpertRouter:
    def test_route_conserves_nothing_negative(self):
        router = ExpertRouter(num_experts=8, num_local_experts=4, top_k=2, seed=0)
        counts = router.route(1024)
        assert len(counts) == 4
        assert all(count >= 0 for count in counts)

    def test_route_total_bounded_by_assignments(self):
        router = ExpertRouter(num_experts=8, num_local_experts=8, top_k=2, seed=0)
        counts = router.route(1024)
        assert sum(counts) == 1024 * 2  # all experts are local

    def test_route_zero_tokens(self):
        router = ExpertRouter(num_experts=4, num_local_experts=2, top_k=2)
        assert router.route(0) == [0, 0]

    def test_determinism_with_seed(self):
        a = ExpertRouter(num_experts=16, num_local_experts=4, top_k=2, seed=7).route(2048)
        b = ExpertRouter(num_experts=16, num_local_experts=4, top_k=2, seed=7).route(2048)
        assert a == b

    def test_different_seeds_differ(self):
        a = ExpertRouter(num_experts=16, num_local_experts=4, top_k=2, seed=1).route(2048)
        b = ExpertRouter(num_experts=16, num_local_experts=4, top_k=2, seed=2).route(2048)
        assert a != b

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ExpertRouter(num_experts=4, num_local_experts=8, top_k=2)
        with pytest.raises(ValueError):
            ExpertRouter(num_experts=4, num_local_experts=2, top_k=2, imbalance=2.0)

    def test_expected_local_tokens(self):
        router = ExpertRouter(num_experts=8, num_local_experts=2, top_k=2)
        assert router.expected_local_tokens(1024) == 512


class TestTraceGeneration:
    def test_trace_is_balanced(self, dense_trace):
        """Every free matches an alloc; nothing is freed twice."""
        live: set[int] = set()
        for event in dense_trace.events:
            if event.is_alloc():
                assert event.req_id not in live
                live.add(event.req_id)
            else:
                assert event.req_id in live
                live.remove(event.req_id)
        # Only persistent tensors stay live at the end of the iteration.
        persistent = {
            e.req_id
            for e in dense_trace.events
            if e.is_alloc() and e.category in (
                TensorCategory.WEIGHT, TensorCategory.GRADIENT, TensorCategory.OPTIMIZER_STATE
            )
        }
        assert live == persistent

    def test_times_strictly_increasing(self, dense_trace):
        times = [event.time for event in dense_trace.events]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_spatial_regularity(self, dense_trace):
        """Thousands of allocations but only a few dozen distinct sizes (Fig. 3)."""
        assert dense_trace.num_requests > 500
        assert dense_trace.distinct_sizes() < 64

    def test_deterministic_generation(self, tiny_dense_config):
        a = TraceGenerator(tiny_dense_config, seed=3).generate()
        b = TraceGenerator(tiny_dense_config, seed=3).generate()
        assert [(e.kind, e.req_id, e.size) for e in a.events] == [
            (e.kind, e.req_id, e.size) for e in b.events
        ]

    def test_recompute_reduces_peak_memory(self, tiny_dense_config):
        plain = TraceGenerator(tiny_dense_config, seed=0).generate()
        recompute = TraceGenerator(tiny_dense_config.with_(recompute=True), seed=0).generate()
        assert recompute.peak_allocated_bytes() < plain.peak_allocated_bytes()
        assert recompute.num_requests > plain.num_requests  # more (transient) requests

    def test_moe_trace_has_dynamic_requests(self, moe_trace):
        assert moe_trace.num_dynamic_requests > 0
        dynamic_events = [e for e in moe_trace.events if e.dyn]
        assert all(e.module for e in dynamic_events)

    def test_dense_trace_has_no_dynamic_requests(self, dense_trace):
        assert dense_trace.num_dynamic_requests == 0

    def test_module_spans_cover_dynamic_modules(self, moe_trace):
        dynamic_modules = {e.module for e in moe_trace.events if e.dyn}
        assert dynamic_modules
        for module in dynamic_modules:
            assert module in moe_trace.module_spans
            start, end = moe_trace.module_spans[module]
            assert start <= end

    def test_scale_reduces_trace_size(self, tiny_dense_config):
        full = TraceGenerator(tiny_dense_config, seed=0).generate()
        scaled = TraceGenerator(tiny_dense_config, seed=0, scale=0.5).generate()
        assert scaled.num_requests < full.num_requests

    def test_invalid_scale_rejected(self, tiny_dense_config):
        with pytest.raises(ValueError):
            TraceGenerator(tiny_dense_config, scale=0.0)

    def test_zero_stage3_shards_weights(self, tiny_dense_config):
        plain = TraceGenerator(tiny_dense_config, seed=0).generate()
        zero3 = TraceGenerator(tiny_dense_config.with_(zero_stage=3), seed=0).generate()
        weight_bytes = lambda trace: sum(  # noqa: E731
            e.size for e in trace.events
            if e.is_alloc() and e.category is TensorCategory.WEIGHT
        )
        assert weight_bytes(zero3) < weight_bytes(plain)

    def test_requests_pairable(self, dense_trace):
        requests = dense_trace.to_requests()
        assert len(requests) == dense_trace.num_requests

    def test_save_and_load_roundtrip(self, tmp_path, dense_trace):
        path = tmp_path / "trace.jsonl"
        dense_trace.save(path)
        loaded = dense_trace.load(path)
        assert loaded.num_events == dense_trace.num_events
        assert loaded.metadata.model_name == dense_trace.metadata.model_name
        assert loaded.peak_allocated_bytes() == dense_trace.peak_allocated_bytes()
        assert loaded.module_spans == dense_trace.module_spans

    def test_static_dynamic_split(self, moe_trace):
        static, dynamic = moe_trace.static_dynamic_split()
        assert static > 0 and dynamic > 0
        assert static + dynamic == moe_trace.total_allocated_bytes()

    def test_category_bytes(self, dense_trace):
        categories = dense_trace.category_bytes()
        assert categories.get("weight", 0) > 0
        assert categories.get("activation", 0) > 0
