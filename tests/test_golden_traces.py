"""Golden-trace regression fixtures.

``tests/fixtures/golden_traces.json`` pins the content digest (plus a few
readable statistics) of small canonical traces at fixed seeds.  Any change to
the generator's event stream -- intentional or not -- flips a digest and fails
these tests with a diff of what moved, so the memory model cannot silently
shift underneath the planner.

When a change is intentional, bump ``TRACEGEN_VERSION`` (the cache layers key
on it) and regenerate the fixtures::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py

then commit the updated ``golden_traces.json`` together with the generator
change.  The fixture file records the generator version it was built with, so
a version bump without regenerated fixtures fails loudly too.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.tracegen import TRACEGEN_VERSION, TraceGenerator
from repro.workloads.training import TrainingConfig

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_traces.json"

REGEN_HINT = (
    "If this change to the trace stream is intentional: bump TRACEGEN_VERSION in "
    "src/repro/workloads/tracegen.py (persistent caches key on it), regenerate the "
    "fixtures with `REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest "
    "tests/test_golden_traces.py`, and commit tests/fixtures/golden_traces.json "
    "with the generator change."
)


def _case_configs() -> dict[str, dict]:
    """The canonical fixture cases: tiny models, full scale, pinned seeds."""
    gpt_tiny = get_model("gpt-tiny")
    moe_tiny = get_model("moe-tiny")
    dense_parallelism = ParallelismConfig(pipeline_parallel=2, data_parallel=2)
    moe_parallelism = ParallelismConfig(
        pipeline_parallel=2, data_parallel=4, expert_parallel=4
    )
    dense = TrainingConfig(
        model=gpt_tiny, parallelism=dense_parallelism,
        micro_batch_size=2, num_microbatches=2,
    )
    moe = TrainingConfig(
        model=moe_tiny, parallelism=moe_parallelism,
        micro_batch_size=1, num_microbatches=2, moe_imbalance=0.6,
    )
    return {
        "gpt-tiny": {"config": dense, "seed": 0, "rank": 0, "ep_rank": 0},
        "gpt-tiny-recompute-last-stage": {
            "config": dense.with_(recompute=True), "seed": 1, "rank": 1, "ep_rank": 0,
        },
        # The comm-free baseline (skewed router, no communication
        # transients): moe_comm_factor == 0 must keep reproducing exactly
        # this stream, so comm-free sweep baselines stay comparable.
        "moe-tiny-comm-free": {"config": moe, "seed": 0, "rank": 0, "ep_rank": 1},
        "moe-tiny-balanced": {
            "config": moe.with_(moe_imbalance=0.0), "seed": 0, "rank": 0, "ep_rank": 0,
        },
        "moe-tiny-comm": {
            "config": moe.with_(moe_comm_factor=1.0), "seed": 0, "rank": 0, "ep_rank": 1,
        },
        # Generation workloads: prefill + autoregressive decode with per-step
        # KV-cache growth.  These pin the dynamic-allocation stream a static
        # planner has to survive, including the capped-context variant where
        # the cache stops growing at max_new_tokens.
        "gpt-tiny-generation": {
            "config": dense.with_(workload_kind="generation", decode_steps=8),
            "seed": 0, "rank": 0, "ep_rank": 0,
        },
        "gpt-tiny-generation-capped": {
            "config": dense.with_(
                workload_kind="generation", decode_steps=8, max_new_tokens=4
            ),
            "seed": 0, "rank": 1, "ep_rank": 0,
        },
        "moe-tiny-generation-comm": {
            "config": moe.with_(
                moe_comm_factor=1.0, workload_kind="generation", decode_steps=4
            ),
            "seed": 0, "rank": 0, "ep_rank": 1,
        },
    }


def _generate_entry(case: dict) -> dict:
    trace = TraceGenerator(
        case["config"], seed=case["seed"], rank=case["rank"], ep_rank=case["ep_rank"]
    ).generate()
    return {
        "digest": trace.digest(),
        "tracegen_version": TRACEGEN_VERSION,
        "num_events": trace.num_events,
        "peak_allocated_bytes": trace.peak_allocated_bytes(),
        "comm_peak_bytes": trace.comm_peak_bytes(),
        "kv_peak_bytes": trace.kv_peak_bytes(),
    }


def _load_fixtures() -> dict:
    if not FIXTURE_PATH.exists():
        pytest.fail(
            f"golden fixture file {FIXTURE_PATH} is missing. Generate it with "
            "`REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py` "
            "and commit it."
        )
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


def test_regenerate_fixtures_when_requested():
    """With REGEN_GOLDEN=1, rewrite the fixture file (and always pass)."""
    if not os.environ.get("REGEN_GOLDEN"):
        pytest.skip("set REGEN_GOLDEN=1 to rewrite tests/fixtures/golden_traces.json")
    entries = {name: _generate_entry(case) for name, case in _case_configs().items()}
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(
        json.dumps(entries, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_fixture_version_matches_generator():
    """TRACEGEN_VERSION moved but the fixtures were not regenerated."""
    fixtures = _load_fixtures()
    stale = {
        name: entry["tracegen_version"]
        for name, entry in fixtures.items()
        if entry["tracegen_version"] != TRACEGEN_VERSION
    }
    if stale:
        pytest.fail(
            f"TRACEGEN_VERSION is {TRACEGEN_VERSION} but these fixtures were "
            f"recorded at other versions: {stale}. {REGEN_HINT}"
        )


def test_fixture_cases_in_sync_with_code():
    fixtures = _load_fixtures()
    assert sorted(fixtures) == sorted(_case_configs()), (
        "fixture file and _case_configs() disagree on the case list. " + REGEN_HINT
    )


@pytest.mark.parametrize("name", sorted(_case_configs()))
def test_golden_digest(name):
    fixtures = _load_fixtures()
    case = _case_configs()[name]
    expected = fixtures[name]
    actual = _generate_entry(case)
    if actual == expected:
        return
    diff = "\n".join(
        f"  {key}: recorded {expected.get(key)!r} -> generated {actual.get(key)!r}"
        for key in sorted(set(expected) | set(actual))
        if expected.get(key) != actual.get(key)
    )
    pytest.fail(
        f"golden trace {name!r} drifted from its recorded fixture "
        f"({case['config'].describe()}, seed={case['seed']}, "
        f"rank=({case['rank']}, {case['ep_rank']})):\n{diff}\n{REGEN_HINT}"
    )


def test_generation_fixtures_hold_kv_cache():
    """Generation fixtures must record live KV-cache bytes (the dynamic
    allocation the tests exist to pin), the capped variant must hold less
    than the uncapped one, and training fixtures must hold none."""
    fixtures = _load_fixtures()
    assert fixtures["gpt-tiny-generation"]["kv_peak_bytes"] > 0
    assert fixtures["moe-tiny-generation-comm"]["kv_peak_bytes"] > 0
    assert (
        fixtures["gpt-tiny-generation-capped"]["kv_peak_bytes"]
        < fixtures["gpt-tiny-generation"]["kv_peak_bytes"]
    )
    assert fixtures["gpt-tiny"]["kv_peak_bytes"] == 0
    assert fixtures["moe-tiny-comm"]["kv_peak_bytes"] == 0


def test_comm_free_case_really_is_comm_free():
    """The comm-free baseline fixture must contain no all-to-all events --
    otherwise it no longer pins the comm-free memory model."""
    case = _case_configs()["moe-tiny-comm-free"]
    trace = TraceGenerator(
        case["config"], seed=case["seed"], rank=case["rank"], ep_rank=case["ep_rank"]
    ).generate()
    assert case["config"].moe_comm_factor == 0.0
    assert not any(event.tag.startswith("a2a_") for event in trace.events)
    fixtures = _load_fixtures()
    assert fixtures["moe-tiny-comm-free"]["comm_peak_bytes"] == 0
    assert fixtures["moe-tiny-comm"]["comm_peak_bytes"] > 0
