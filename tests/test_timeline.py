"""Tests for the discrete-event timeline simulator and its plumbing.

Covers the subsystem's defining properties -- convergence to the analytical
model when nothing dynamic is happening, emergent pipeline bubbles, strictly
worse iterations under router imbalance and communication (monotone in the
comm factor), determinism -- plus the integration surface: the runner's
``timing`` backends, the new sweep columns and their ``--compare`` regression
directions, the ``device_memory_by_rank`` grid axis, and the GPU-spec
single-source-of-truth satellite.
"""

from __future__ import annotations

import pytest

from repro.gpu.device import GIB, a800_80gb, device_from_spec, h200_141gb, mi210_64gb
from repro.gpu.specs import GPU_SPECS, get_gpu
from repro.simulator import throughput as throughput_module
from repro.simulator.runner import run_job, run_workload
from repro.simulator.throughput import ThroughputModel
from repro.sweep.compare import compare_results
from repro.sweep.engine import execute_point, run_sweep
from repro.sweep.spec import SweepSpec, load_spec
from repro.timeline import (
    TimelineSimulator,
    clear_timeline_memo,
    simulate_timeline,
)
from repro.workloads.moe import ExpertRouter
from repro.workloads.models import get_model
from repro.workloads.tracegen import config_fingerprint
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.training import TrainingConfig

GPU = GPU_SPECS["A800-80GB"]


def dense_config(**overrides) -> TrainingConfig:
    defaults = dict(
        model=get_model("gpt-tiny"),
        parallelism=ParallelismConfig(pipeline_parallel=4, data_parallel=2),
        micro_batch_size=2,
        num_microbatches=8,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def moe_config(**overrides) -> TrainingConfig:
    defaults = dict(
        model=get_model("moe-tiny"),
        parallelism=ParallelismConfig(
            pipeline_parallel=2, data_parallel=4, expert_parallel=4
        ),
        micro_batch_size=1,
        num_microbatches=2,
        moe_imbalance=0.6,
        moe_comm_factor=1.0,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def rel_diff(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b))


# ---------------------------------------------------------------------- #
# Differential: timeline vs analytical
# ---------------------------------------------------------------------- #
class TestAnalyticalConvergence:
    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"recompute": True},
            {"zero_stage": 1},
            {"offload_activations": True, "recompute": True},
            {
                "parallelism": ParallelismConfig(
                    tensor_parallel=2, pipeline_parallel=2, data_parallel=2
                )
            },
            {"num_microbatches": 1},  # m < p: the degenerate pipeline
        ],
    )
    def test_dense_iteration_matches_closed_form(self, overrides):
        """With nothing dynamic, the emergent schedule reproduces the classical
        ``(m + p - 1) / m`` pipeline stretch exactly -- same iteration time and
        same bubble fraction as the closed form, to float precision."""
        config = dense_config(**overrides)
        timeline = simulate_timeline(config, gpu=GPU)
        analytical = ThroughputModel(GPU).estimate(config)
        assert rel_diff(timeline.iteration_seconds, analytical.iteration_seconds) < 1e-9
        assert abs(timeline.bubble_fraction - analytical.bubble_fraction) < 1e-9

    def test_moe_balanced_comm_free_converges(self):
        """The acceptance-criteria differential: a balanced router and zero
        comm factor make every EP rank identical, so the simulated iteration
        lands on the analytical estimate (within balanced-split rounding)."""
        config = moe_config(moe_imbalance=0.0, moe_comm_factor=0.0)
        timeline = simulate_timeline(config, gpu=GPU)
        analytical = ThroughputModel(GPU).estimate(config)
        assert rel_diff(timeline.iteration_seconds, analytical.iteration_seconds) < 0.01
        assert timeline.comm_seconds == 0.0

    def test_pp1_has_no_bubble(self):
        config = dense_config(parallelism=ParallelismConfig(data_parallel=2))
        timeline = simulate_timeline(config, gpu=GPU)
        assert timeline.bubble_fraction < 1e-12

    def test_vpp_reduces_bubble(self):
        base = ParallelismConfig(pipeline_parallel=2, data_parallel=2)
        vpp = ParallelismConfig(
            pipeline_parallel=2, data_parallel=2, virtual_pipeline_chunks=2
        )
        plain = simulate_timeline(dense_config(parallelism=base, num_microbatches=4), gpu=GPU)
        chunked = simulate_timeline(dense_config(parallelism=vpp, num_microbatches=4), gpu=GPU)
        assert chunked.bubble_fraction < plain.bubble_fraction

    def test_mfu_positive_and_below_one(self):
        timeline = simulate_timeline(dense_config(), gpu=GPU)
        assert 0.0 < timeline.mfu < 1.0
        # MFU can never exceed the tuned achievable ceiling.
        assert timeline.mfu <= GPU.achievable_mfu + 1e-9


# ---------------------------------------------------------------------- #
# Imbalance, communication, stragglers
# ---------------------------------------------------------------------- #
class TestRoutedLoadTiming:
    def test_imbalance_and_comm_strictly_slower_than_baseline(self):
        """The acceptance criterion: skewed routing plus communication costs
        must make the binding rank strictly slower than the balanced,
        comm-free twin."""
        slow = simulate_timeline(moe_config(), gpu=GPU)
        baseline = simulate_timeline(
            moe_config(moe_imbalance=0.0, moe_comm_factor=0.0), gpu=GPU
        )
        assert slow.iteration_seconds > baseline.iteration_seconds
        # ... and each effect alone already hurts.
        imbalance_only = simulate_timeline(moe_config(moe_comm_factor=0.0), gpu=GPU)
        comm_only = simulate_timeline(moe_config(moe_imbalance=0.0), gpu=GPU)
        assert imbalance_only.iteration_seconds > baseline.iteration_seconds
        assert comm_only.iteration_seconds > baseline.iteration_seconds

    def test_iteration_monotone_in_comm_factor(self):
        previous = None
        for factor in [0.0, 0.25, 0.5, 1.0, 2.0]:
            timeline = simulate_timeline(moe_config(moe_comm_factor=factor), gpu=GPU)
            if previous is not None:
                assert timeline.iteration_seconds > previous
            previous = timeline.iteration_seconds

    def test_comm_seconds_scale_linearly_with_factor(self):
        one = simulate_timeline(moe_config(moe_comm_factor=1.0), gpu=GPU)
        two = simulate_timeline(moe_config(moe_comm_factor=2.0), gpu=GPU)
        assert rel_diff(two.comm_seconds, 2 * one.comm_seconds) < 1e-9

    def test_imbalance_creates_straggler_stalls_without_comm_bytes(self):
        """Even with zero-duration collectives the synchronisation is real:
        hot-expert ranks make their EP peers wait at every all-to-all."""
        timeline = simulate_timeline(moe_config(moe_comm_factor=0.0), gpu=GPU)
        assert timeline.stall_seconds > 0
        stalls = [rank.stall_seconds for rank in timeline.ranks]
        assert max(stalls) > min(stalls)

    def test_binding_rank_is_a_coordinate_under_skew(self):
        timeline = simulate_timeline(moe_config(), gpu=GPU)
        assert timeline.binding_rank in {rank.rank for rank in timeline.ranks}
        assert len(timeline.binding_rank) == 2

    def test_timing_loads_match_the_trace_router(self):
        """The timeline must derive its loads from the *same* gating decisions
        that size the trace's COMM_BUFFER transients: the per-EP-rank slices
        of one globally-seeded draw."""
        config = moe_config()
        simulator = TimelineSimulator(config, gpu=GPU, seed=3)
        model = config.model
        ep = config.parallelism.expert_parallel
        loads = simulator._routed_loads(5, 1)
        for ep_rank in range(ep):
            router = ExpertRouter(
                num_experts=model.num_experts,
                num_local_experts=model.num_experts // ep,
                top_k=model.moe_top_k,
                seed=3,
                imbalance=config.moe_imbalance,
                ep_rank=ep_rank,
            )
            assert loads[ep_rank] == sum(
                router.route(simulator.tokens, layer=5, microbatch=1)
            )

    def test_ep_must_divide_experts(self):
        config = moe_config(
            parallelism=ParallelismConfig(
                pipeline_parallel=2, data_parallel=4, expert_parallel=3
            )
        )
        with pytest.raises(ValueError, match="divisible"):
            TimelineSimulator(config, gpu=GPU)


# ---------------------------------------------------------------------- #
# Determinism and event-stream invariants
# ---------------------------------------------------------------------- #
class TestEventStream:
    def test_repeated_simulation_is_byte_identical(self):
        config = moe_config()
        first = TimelineSimulator(config, gpu=GPU, seed=7).run()
        second = TimelineSimulator(config, gpu=GPU, seed=7).run()
        assert first.digest() == second.digest()
        assert [e for r in first.ranks for e in r.events] == [
            e for r in second.ranks for e in r.events
        ]

    def test_different_seeds_differ_under_skew(self):
        config = moe_config()
        assert (
            TimelineSimulator(config, gpu=GPU, seed=0).run().digest()
            != TimelineSimulator(config, gpu=GPU, seed=1).run().digest()
        )

    def test_events_are_ordered_and_non_overlapping_per_rank(self):
        timeline = simulate_timeline(moe_config(), gpu=GPU)
        for rank in timeline.ranks:
            cursor = 0.0
            for event in rank.events:
                assert event.duration >= 0.0
                assert event.start >= cursor - 1e-12
                cursor = max(cursor, event.end)
            assert cursor <= timeline.iteration_seconds + 1e-12
            assert rank.finish_seconds <= timeline.iteration_seconds + 1e-12

    def test_time_accounting_is_consistent(self):
        timeline = simulate_timeline(moe_config(), gpu=GPU)
        for rank in timeline.ranks:
            busy = rank.compute_seconds + rank.comm_seconds + rank.stall_seconds
            assert busy <= rank.finish_seconds + 1e-12
            by_kind = {"compute": 0.0, "comm": 0.0, "stall": 0.0}
            for event in rank.events:
                if event.kind in ("forward", "backward", "expert_forward", "expert_backward"):
                    by_kind["compute"] += event.duration
                elif event.kind in ("a2a_dispatch", "a2a_combine"):
                    by_kind["comm"] += event.duration
                elif event.kind == "stall":
                    by_kind["stall"] += event.duration
            assert by_kind["compute"] == pytest.approx(rank.compute_seconds)
            assert by_kind["comm"] == pytest.approx(rank.comm_seconds)
            assert by_kind["stall"] == pytest.approx(rank.stall_seconds)

    def test_collectives_are_synchronised_across_the_ep_group(self):
        """Every (phase, layer) collective must start at the same instant on
        every EP peer of its stage -- the synchronising-collective semantics
        stragglers emerge from."""
        timeline = simulate_timeline(moe_config(), gpu=GPU)
        collectives: dict[tuple, set] = {}
        for rank in timeline.ranks:
            stage = rank.rank[0]
            for event in rank.events:
                if event.kind in ("a2a_dispatch", "a2a_combine"):
                    key = (stage, event.kind, event.microbatch, event.chunk, event.layer)
                    collectives.setdefault(key, set()).add(event.start)
        assert collectives
        for key, starts in collectives.items():
            assert len(starts) == 1, f"collective {key} not synchronised: {starts}"

    def test_memo_returns_same_object(self):
        clear_timeline_memo()
        config = moe_config()
        assert simulate_timeline(config, gpu=GPU) is simulate_timeline(config, gpu=GPU)

    def test_memo_keys_on_spec_contents_not_name(self):
        """A customised GPUSpec under a stock name must never be served a
        memoised result computed for different hardware constants."""
        import dataclasses

        clear_timeline_memo()
        config = moe_config()
        stock = simulate_timeline(config, gpu=GPU)
        slow_a2a = dataclasses.replace(GPU, a2a_gbytes_per_sec=GPU.a2a_gbytes_per_sec / 10)
        custom = simulate_timeline(config, gpu=slow_a2a)
        assert custom is not stock
        assert custom.comm_seconds > stock.comm_seconds

    def test_result_summary_surface(self):
        timeline = simulate_timeline(moe_config(), gpu=GPU)
        summary = timeline.as_dict()
        assert summary["iteration_seconds"] == timeline.iteration_seconds
        assert summary["binding_rank"] == list(timeline.binding_rank)
        assert summary["num_events"] == timeline.num_events
        per_rank = timeline.rank_timeline(timeline.binding_rank)
        assert per_rank.rank == timeline.binding_rank
        with pytest.raises(KeyError):
            timeline.rank_timeline((99, 99))
        lines = list(timeline.iter_jsonl())
        assert len(lines) == timeline.num_events + 1  # header + one per event


# ---------------------------------------------------------------------- #
# Runner integration (timing backends)
# ---------------------------------------------------------------------- #
class TestRunnerTiming:
    def test_run_job_timeline_backend(self):
        job = run_job(moe_config(), "torch2.3", ranks="all", scale=0.5)
        assert job.throughput is not None and job.throughput.source == "timeline"
        assert job.timeline is not None
        assert job.iteration_seconds > 0
        assert job.comm_seconds > 0
        assert 0 < job.bubble_fraction < 1
        assert 0 < job.mfu < 1
        data = job.as_dict()
        for key in ("iteration_seconds", "comm_seconds", "bubble_fraction", "mfu"):
            assert key in data
        assert data["timing"] == "timeline"

    def test_run_job_analytical_fallback(self):
        job = run_job(moe_config(), "torch2.3", ranks="all", scale=0.5, timing="analytical")
        assert job.throughput is not None and job.throughput.source == "analytical"
        assert job.timeline is None
        assert job.comm_seconds == 0.0

    def test_run_job_rejects_unknown_timing(self):
        with pytest.raises(ValueError, match="timing"):
            run_job(moe_config(), "torch2.3", timing="psychic")

    def test_timeline_slower_than_analytical_under_skew(self):
        """The closed form cannot see stragglers, so the timeline's iteration
        must be the longer one for an imbalanced communicating job."""
        timeline_job = run_job(moe_config(), "torch2.3", ranks="all", scale=0.5)
        analytical_job = run_job(
            moe_config(), "torch2.3", ranks="all", scale=0.5, timing="analytical"
        )
        assert timeline_job.iteration_seconds > analytical_job.iteration_seconds
        assert timeline_job.tflops < analytical_job.tflops

    def test_run_workload_accepts_timing(self, tiny_dense_config):
        run = run_workload(
            tiny_dense_config,
            "torch2.3",
            with_throughput=True,
            timing="timeline",
            scale=0.25,
        )
        assert run.throughput is not None and run.throughput.source == "timeline"
        assert run.as_dict()["timing"] == "timeline"
        with pytest.raises(ValueError, match="timing"):
            run_workload(tiny_dense_config, "torch2.3", timing="nope")


# ---------------------------------------------------------------------- #
# Sweep integration: spec, rows, compare
# ---------------------------------------------------------------------- #
def tiny_sweep_spec(**overrides) -> SweepSpec:
    fields = dict(
        name="tl-test",
        model="moe-tiny",
        parallelism={"pipeline_parallel": 2, "data_parallel": 4, "expert_parallel": 4},
        base={"num_microbatches": 2, "micro_batch_size": 1, "moe_imbalance": 0.6},
        grid={"moe_comm_factor": [0.0, 1.0]},
        allocators=["torch2.3"],
        ranks="all",
    )
    fields.update(overrides)
    return SweepSpec(**fields)


class TestSweepTiming:
    def test_spec_validates_timing(self):
        assert tiny_sweep_spec(timing="analytical").timing == "analytical"
        with pytest.raises(ValueError, match="timing"):
            tiny_sweep_spec(timing="vibes")

    def test_points_carry_timing_into_cache_payload(self):
        spec = tiny_sweep_spec(timing="analytical")
        points = spec.expand()
        assert all(point.timing == "analytical" for point in points)
        assert all(
            point.cache_payload()["timing"] == "analytical" for point in points
        )
        # Same grid at the default backend must key differently.
        default_points = tiny_sweep_spec().expand()
        assert (
            default_points[0].cache_payload() != points[0].cache_payload()
        )

    def test_rows_have_timing_columns_and_monotone_comm(self):
        result = run_sweep(tiny_sweep_spec())
        assert result.num_points == 2
        by_factor = {row["config"]: row for row in result.rows}
        for row in result.rows:
            assert row["timing"] == "timeline"
            for key in ("iteration_seconds", "comm_seconds", "bubble_fraction", "mfu"):
                assert key in row
        assert (
            by_factor["comm=1.0"]["iteration_seconds"]
            > by_factor["comm=0.0"]["iteration_seconds"]
        )
        assert by_factor["comm=1.0"]["comm_seconds"] > 0
        assert by_factor["comm=0.0"]["comm_seconds"] == 0.0

    def test_timeline_smoke_preset_loads(self):
        spec = load_spec("timeline-smoke")
        assert spec.timing == "timeline"
        assert spec.num_points == 3

    def test_compare_flags_timing_regressions(self):
        result = run_sweep(tiny_sweep_spec())
        baseline = result.as_dict()
        regressed = result.as_dict()
        import copy

        regressed = copy.deepcopy(regressed)
        regressed["rows"][0]["iteration_seconds"] *= 1.5
        report = compare_results(baseline, regressed)
        assert report.has_regressions
        assert report.exit_code == 1
        assert any("iteration_seconds" in reason
                   for comparison in report.regressions
                   for reason in comparison.regressions)
        # mfu moves the other way: shrinking it is the regression.
        worse_mfu = copy.deepcopy(baseline)
        worse_mfu["rows"][1]["mfu"] *= 0.5
        report = compare_results(baseline, worse_mfu)
        assert report.has_regressions

    def test_compare_never_matches_across_timing_backends(self):
        """An analytical baseline must not be silently diffed against a
        timeline run: the identity includes the backend, so the gate reports
        the schema mismatch instead of bogus metric regressions."""
        timeline_result = run_sweep(tiny_sweep_spec()).as_dict()
        analytical_result = run_sweep(tiny_sweep_spec(timing="analytical")).as_dict()
        report = compare_results(analytical_result, timeline_result)
        assert report.num_matched == 0
        assert report.baseline_unmatched
        assert report.exit_code == 1


# ---------------------------------------------------------------------- #
# device_memory_by_rank as a grid axis
# ---------------------------------------------------------------------- #
class TestBudgetAxis:
    def budget_spec(self, values) -> SweepSpec:
        return SweepSpec(
            name="budget-test",
            model="gpt-tiny",
            parallelism={"pipeline_parallel": 2, "data_parallel": 2},
            base={"num_microbatches": 2, "micro_batch_size": 1},
            grid={"device_memory_by_rank": values},
            allocators=["torch2.3"],
            ranks="all",
        )

    def test_axis_expands_to_labelled_points(self):
        spec = self.budget_spec([None, {"0": 40}, {"0": 40, "1": 96}])
        points = spec.expand()
        assert len(points) == 3
        labels = [point.row_label for point in points]
        assert labels == ["mem=uniform", "mem=0:40", "mem=0:40,1:96"]
        assert points[0].device_memory_by_rank == ()
        assert points[1].device_memory_by_rank == (("0", 40.0),)
        assert points[2].device_memory_by_rank == (("0", 40.0), ("1", 96.0))
        # Distinct budgets must key the result cache differently.
        payloads = [point.cache_payload() for point in points]
        assert len({str(sorted(p.items())) for p in payloads}) == 3
        # ... but budgets never shape traces, so every cell must share one
        # trace fingerprint (one generation, one cache entry for the axis).
        fingerprints = {
            config_fingerprint(point.config, seed=point.seed, scale=point.scale)
            for point in points
        }
        assert len(fingerprints) == 1

    def test_axis_rejects_bad_maps(self):
        with pytest.raises(ValueError, match="not a rank"):
            self.budget_spec([{"zero": 40}])
        with pytest.raises(ValueError, match="positive GiB"):
            self.budget_spec([{"0": -1}])
        with pytest.raises(ValueError, match="map rank labels"):
            self.budget_spec([40])

    def test_axis_rows_report_their_budget(self):
        spec = self.budget_spec([None, {"0": 40}])
        rows = [execute_point(point) for point in spec.expand()]
        assert rows[0]["config"] == "mem=uniform"
        assert rows[1]["config"] == "mem=0:40"
        # The capped rank 0 binds at 40 GiB: utilization is only reported
        # under heterogeneous budgets.
        assert "binding_utilization" in rows[1]
        assert "binding_utilization" not in rows[0]

    def test_cached_rows_relabel_for_the_current_point(self, tmp_path):
        """A spec-level budget map and the same map swept as a grid axis share
        one measurement (equal cache payloads, equal fingerprints) but not one
        label -- a warm cache hit must re-label the row for the point asking."""
        axis_spec = self.budget_spec([{"0": 40}])
        level_spec = SweepSpec(
            name="budget-level",
            model="gpt-tiny",
            parallelism={"pipeline_parallel": 2, "data_parallel": 2},
            base={"num_microbatches": 2, "micro_batch_size": 1},
            allocators=["torch2.3"],
            ranks="all",
            device_memory_by_rank={"0": 40},
        )
        assert (
            axis_spec.expand()[0].cache_payload()
            == level_spec.expand()[0].cache_payload()
        )
        first = run_sweep(axis_spec, cache_dir=tmp_path / "cache")
        second = run_sweep(level_spec, cache_dir=tmp_path / "cache")
        assert first.rows[0]["config"] == "mem=0:40"
        assert second.rows[0]["cached"] is True  # the measurement was shared
        assert second.rows[0]["config"] == level_spec.expand()[0].row_label
        assert second.rows[0]["config"] != "mem=0:40"

    def test_axis_coexists_with_other_axes(self):
        spec = self.budget_spec([None, {"0": 40}])
        spec.grid["micro_batch_size"] = [1, 2]
        spec = SweepSpec.from_dict(spec.to_dict())
        points = spec.expand()
        assert len(points) == 4
        labels = {point.row_label for point in points}
        assert "mbs=2/mem=0:40" in labels
        # The budget half of the label lives on the point, not the config.
        assert all("mem=" not in point.config.label for point in points)


# ---------------------------------------------------------------------- #
# Result-cache invalidation
# ---------------------------------------------------------------------- #
def test_result_key_invalidates_on_timeline_version(tmp_path, monkeypatch):
    """Cached rows carry simulator-computed timing columns, so a
    TIMELINE_VERSION bump must rotate every result key (the same contract
    TRACEGEN_VERSION has through the trace fingerprint)."""
    from repro.sweep import cache as cache_module

    cache = cache_module.SweepCache(tmp_path)
    timeline_payload = {"allocator": "torch2.3", "timing": "timeline"}
    analytical_payload = {"allocator": "torch2.3", "timing": "analytical"}
    before = cache.result_key("fingerprint", timeline_payload)
    analytical_before = cache.result_key("fingerprint", analytical_payload)
    monkeypatch.setattr(
        cache_module, "TIMELINE_VERSION", cache_module.TIMELINE_VERSION + 1
    )
    assert cache.result_key("fingerprint", timeline_payload) != before
    # Analytical rows never touch the simulator: their keys must survive.
    assert cache.result_key("fingerprint", analytical_payload) == analytical_before


# ---------------------------------------------------------------------- #
# GPU spec single source of truth
# ---------------------------------------------------------------------- #
class TestGpuSpecs:
    def test_device_presets_match_specs(self):
        for preset, name in [
            (a800_80gb, "A800-80GB"),
            (h200_141gb, "H200-141GB"),
            (mi210_64gb, "MI210-64GB"),
        ]:
            device = preset()
            assert device.name == name
            assert device.capacity == GPU_SPECS[name].memory_gib * GIB

    def test_throughput_module_reexports_the_same_objects(self):
        assert throughput_module.GPU_SPECS is GPU_SPECS
        for name, spec in GPU_SPECS.items():
            assert throughput_module.GPU_SPECS[name] is spec

    def test_device_from_spec_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown GPU"):
            device_from_spec("TPU-v9")
        with pytest.raises(ValueError, match="unknown GPU"):
            get_gpu("TPU-v9")

    def test_get_gpu_passes_specs_through(self):
        spec = GPU_SPECS["A800-80GB"]
        assert get_gpu(spec) is spec
