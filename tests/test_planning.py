"""Tests for STAlloc's plan synthesis: grouping, fusion, layering, global planning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic_space import (
    dynamic_request_group_index,
    group_temporal_range,
    homolayer_groups,
    locate_dynamic_reusable_spaces,
)
from repro.core.events import PhaseKind
from repro.core.homophase import (
    LocalPlan,
    attempt_fusion,
    build_homophase_groups,
    fuse_adjacent_groups,
    fuse_plans_by_insertion,
    fuse_plans_by_repack,
    pack_requests,
    weighted_average_tmp,
)
from repro.core.homosize import MemoryLayer, construct_memory_layers, group_by_size
from repro.core.plan import AllocationDecision, StaticAllocationPlan
from repro.core.planner import GlobalPlannerConfig, build_global_plan
from repro.core.profiler import AllocationProfiler
from repro.core.synthesizer import PlanSynthesizer, SynthesizerConfig
from tests.conftest import make_phase, make_request


class TestPackRequests:
    def test_overlapping_requests_are_stacked(self):
        requests = [make_request(i, 100, 0, 10) for i in range(3)]
        plan = pack_requests(requests)
        assert plan.size == 300
        plan.validate()

    def test_sequential_requests_share_space(self):
        requests = [
            make_request(0, 100, 0, 5),
            make_request(1, 100, 5, 10),
            make_request(2, 100, 10, 15),
        ]
        plan = pack_requests(requests)
        assert plan.size == 100
        plan.validate()

    def test_mixed_lifespans(self):
        requests = [
            make_request(0, 100, 0, 20),   # long lived
            make_request(1, 50, 0, 5),     # short
            make_request(2, 50, 6, 12),    # reuses request 1's space
        ]
        plan = pack_requests(requests)
        assert plan.size == 150
        plan.validate()

    def test_empty_plan(self):
        plan = pack_requests([])
        assert plan.size == 0
        assert plan.time_memory_product() == 1.0

    def test_tmp_perfect_for_single_request(self):
        plan = pack_requests([make_request(0, 128, 0, 10)])
        assert plan.time_memory_product() == pytest.approx(1.0)

    def test_tmp_reflects_bubbles(self):
        # Two requests that overlap for only part of their lifespans.
        plan = pack_requests([make_request(0, 100, 0, 10), make_request(1, 100, 8, 20)])
        assert plan.time_memory_product() < 1.0


class TestHomoPhaseGrouping:
    def test_groups_keyed_by_phase_pair(self):
        f0, b0 = make_phase(1, PhaseKind.FORWARD, 0), make_phase(2, PhaseKind.BACKWARD, 0)
        f1, b1 = make_phase(3, PhaseKind.FORWARD, 1), make_phase(4, PhaseKind.BACKWARD, 1)
        requests = [
            make_request(0, 10, 0, 100, alloc_phase=f0, free_phase=b0),
            make_request(1, 10, 1, 101, alloc_phase=f0, free_phase=b0),
            make_request(2, 10, 50, 150, alloc_phase=f1, free_phase=b1),
        ]
        groups = build_homophase_groups(requests)
        assert len(groups) == 2
        assert {group.num_requests for group in groups} == {1, 2}

    def test_group_plans_are_conflict_free(self, dense_trace):
        profile = AllocationProfiler().profile(dense_trace)
        groups = build_homophase_groups(profile.static_requests)
        for group in groups:
            group.validate()
        assert sum(group.num_requests for group in groups) == len(profile.static_requests)


class TestFusion:
    def _adjacent_plans(self):
        f0 = make_phase(1, PhaseKind.FORWARD, 0)
        b0 = make_phase(2, PhaseKind.BACKWARD, 0)
        scoped = pack_requests(
            [make_request(0, 100, 0, 100, alloc_phase=f0, free_phase=b0),
             make_request(1, 100, 1, 101, alloc_phase=f0, free_phase=b0)],
            phase_span=(f0, b0),
        )
        transient = pack_requests(
            [make_request(2, 80, 110, 120, alloc_phase=b0, free_phase=b0),
             make_request(3, 80, 121, 130, alloc_phase=b0, free_phase=b0)],
            phase_span=(b0, b0),
        )
        return scoped, transient

    def test_fusion_by_repack_keeps_all_requests(self):
        a, b = self._adjacent_plans()
        fused = fuse_plans_by_repack(a, b)
        assert fused.num_requests == a.num_requests + b.num_requests
        fused.validate()

    def test_fusion_by_insertion_keeps_all_requests(self):
        a, b = self._adjacent_plans()
        fused = fuse_plans_by_insertion(a, b)
        assert fused.num_requests == a.num_requests + b.num_requests
        fused.validate()

    def test_fusion_reuses_space_across_phase_boundary(self):
        a, b = self._adjacent_plans()
        fused = fuse_plans_by_repack(a, b)
        # The transient requests run after the scoped ones have been freed, so
        # the fused plan should not be taller than the scoped plan alone.
        assert fused.size <= a.size

    def test_acceptance_requires_tmp_improvement(self):
        a, b = self._adjacent_plans()
        fused = attempt_fusion(a, b)
        if fused is not None:
            assert fused.time_memory_product() > weighted_average_tmp(a, b)

    def test_fuse_adjacent_groups_reduces_group_count(self):
        a, b = self._adjacent_plans()
        fused, count = fuse_adjacent_groups([a, b])
        assert count in (0, 1)
        assert len(fused) == 2 - count

    def test_fusion_disabled(self):
        a, b = self._adjacent_plans()
        fused, count = fuse_adjacent_groups([a, b], enable_fusion=False)
        assert count == 0 and len(fused) == 2

    def test_unknown_strategy_rejected(self):
        a, b = self._adjacent_plans()
        with pytest.raises(ValueError):
            attempt_fusion(a, b, strategy="magic")

    def test_phase_span_merge(self):
        a, b = self._adjacent_plans()
        fused = fuse_plans_by_repack(a, b)
        assert fused.phase_span[0].index == 1
        assert fused.phase_span[1].index == 2


class TestMemoryLayers:
    def _plan(self, req_id, size, start, end):
        return pack_requests([make_request(req_id, size, start, end)])

    def test_non_overlapping_plans_share_one_layer(self):
        plans = [self._plan(0, 100, 0, 10), self._plan(1, 100, 10, 20), self._plan(2, 100, 20, 30)]
        layers = construct_memory_layers(plans, 100)
        assert len(layers) == 1
        assert len(layers[0].items) == 3

    def test_overlapping_plans_need_separate_layers(self):
        plans = [self._plan(0, 100, 0, 20), self._plan(1, 100, 5, 25), self._plan(2, 100, 10, 30)]
        layers = construct_memory_layers(plans, 100)
        assert len(layers) == 3

    def test_layer_count_is_minimal(self):
        # Peak concurrency is 2, so exactly 2 layers are needed.
        plans = [
            self._plan(0, 100, 0, 10),
            self._plan(1, 100, 5, 15),
            self._plan(2, 100, 10, 20),
            self._plan(3, 100, 15, 25),
        ]
        assert len(construct_memory_layers(plans, 100)) == 2

    def test_oversized_plan_rejected(self):
        with pytest.raises(ValueError):
            construct_memory_layers([self._plan(0, 200, 0, 10)], 100)

    def test_group_by_size(self):
        plans = [self._plan(0, 100, 0, 10), self._plan(1, 100, 10, 20), self._plan(2, 50, 0, 10)]
        groups = group_by_size(plans)
        assert set(groups) == {100, 50}
        assert len(groups[100]) == 2

    def test_layer_can_hold_checks_time_and_size(self):
        layer = MemoryLayer(size=100)
        layer.append(self._plan(0, 100, 0, 10))
        assert layer.can_hold(self._plan(1, 80, 10, 20))
        assert not layer.can_hold(self._plan(2, 80, 5, 15))
        assert not layer.can_hold(self._plan(3, 200, 10, 20))

    def test_idle_time(self):
        layer = MemoryLayer(size=100)
        layer.append(self._plan(0, 100, 0, 10))
        assert layer.idle_time(0, 20) == 10


class TestGlobalPlanning:
    def test_decisions_cover_all_requests(self, dense_trace):
        profile = AllocationProfiler().profile(dense_trace)
        groups = build_homophase_groups(profile.static_requests)
        plan, layers = build_global_plan(groups)
        assert len(plan.decisions) == len(profile.static_requests)
        plan.validate()

    def test_gap_insertion_reduces_pool(self):
        # A small plan whose lifetime fits the idle window of a big layer.
        big_a = pack_requests([make_request(0, 1000, 0, 10)])
        big_b = pack_requests([make_request(1, 1000, 20, 30)])
        small = pack_requests([make_request(2, 100, 12, 18)])
        with_insertion, _ = build_global_plan([big_a, big_b, small], GlobalPlannerConfig())
        without_insertion, _ = build_global_plan(
            [big_a, big_b, small], GlobalPlannerConfig(enable_gap_insertion=False)
        )
        assert with_insertion.pool_size == 1000
        assert without_insertion.pool_size == 1100

    def test_descending_order_never_worse_on_trace(self, dense_trace):
        profile = AllocationProfiler().profile(dense_trace)
        groups = build_homophase_groups(profile.static_requests)
        descending, _ = build_global_plan(groups, GlobalPlannerConfig(descending_size_order=True))
        ascending, _ = build_global_plan(groups, GlobalPlannerConfig(descending_size_order=False))
        assert descending.pool_size <= ascending.pool_size

    def test_plan_validation_detects_conflicts(self):
        request_a = make_request(0, 100, 0, 10)
        request_b = make_request(1, 100, 5, 15)
        plan = StaticAllocationPlan(
            decisions=[AllocationDecision(request_a, 0), AllocationDecision(request_b, 50)]
        )
        with pytest.raises(ValueError):
            plan.validate()

    def test_plan_validation_accepts_time_disjoint_overlap(self):
        request_a = make_request(0, 100, 0, 10)
        request_b = make_request(1, 100, 10, 20)
        plan = StaticAllocationPlan(
            decisions=[AllocationDecision(request_a, 0), AllocationDecision(request_b, 0)]
        )
        plan.validate()

    def test_pool_size_bounds_every_decision(self):
        request = make_request(0, 100, 0, 10)
        plan = StaticAllocationPlan(decisions=[AllocationDecision(request, 50)], pool_size=100)
        with pytest.raises(ValueError):
            plan.validate()


class TestDynamicSpace:
    def _static_plan(self):
        requests = [
            make_request(0, 100, 0, 10),    # occupies [0, 100) during [0, 10)
            make_request(1, 100, 20, 30),   # occupies [100, 200) during [20, 30)
        ]
        decisions = [AllocationDecision(requests[0], 0), AllocationDecision(requests[1], 100)]
        return StaticAllocationPlan(decisions=decisions, pool_size=200)

    def test_homolayer_grouping(self):
        dynamic = [
            make_request(10, 64, 2, 5, dyn=True, alloc_module="l0", free_module="l0"),
            make_request(11, 64, 3, 6, dyn=True, alloc_module="l0", free_module="l0"),
            make_request(12, 64, 22, 25, dyn=True, alloc_module="l1", free_module="l1"),
        ]
        groups = homolayer_groups(dynamic)
        assert set(groups) == {("l0", "l0"), ("l1", "l1")}
        assert len(groups[("l0", "l0")]) == 2

    def test_reusable_space_excludes_live_statics(self):
        dynamic = [make_request(10, 64, 2, 5, dyn=True, alloc_module="l0", free_module="l0")]
        spaces = locate_dynamic_reusable_spaces(
            dynamic, self._static_plan(), {"l0": (2, 5)}
        )
        space = spaces[("l0", "l0")]
        # Static request 0 is live during [2, 5); request 1 is not.
        assert not space.contains_point(50)
        assert space.contains(100, 200)

    def test_reusable_space_full_when_statics_idle(self):
        dynamic = [make_request(10, 64, 12, 18, dyn=True, alloc_module="gap", free_module="gap")]
        spaces = locate_dynamic_reusable_spaces(dynamic, self._static_plan(), {"gap": (12, 18)})
        assert spaces[("gap", "gap")].total == 200

    def test_module_span_fallback_to_members(self):
        members = [make_request(10, 64, 2, 5, dyn=True, alloc_module="x", free_module="x")]
        start, end = group_temporal_range(("x", "x"), members, {})
        assert (start, end) == (2, 5)

    def test_group_index(self):
        dynamic = [make_request(10, 64, 2, 5, dyn=True, alloc_module="a", free_module="b")]
        assert dynamic_request_group_index(dynamic) == {10: ("a", "b")}

    def test_empty_dynamic_set(self):
        assert locate_dynamic_reusable_spaces([], self._static_plan(), {}) == {}


class TestPlanSynthesizer:
    def test_static_plan_valid_and_complete(self, dense_trace):
        profile = AllocationProfiler().profile(dense_trace)
        plan = PlanSynthesizer().synthesize(profile)
        assert len(plan.static_plan) == len(profile.static_requests)
        plan.static_plan.validate()

    def test_pool_size_close_to_peak_demand(self, dense_trace):
        """The plan's reserved pool should be near the theoretical lower bound."""
        profile = AllocationProfiler().profile(dense_trace)
        plan = PlanSynthesizer().synthesize(profile)
        peak = plan.synthesis_info["peak_static_demand_bytes"]
        assert plan.pool_size >= peak
        assert plan.pool_size <= peak * 1.10  # within 10% of optimal

    def test_moe_plan_has_dynamic_spaces(self, moe_trace):
        profile = AllocationProfiler().profile(moe_trace)
        plan = PlanSynthesizer().synthesize(profile)
        assert plan.dynamic_reusable_spaces
        assert plan.dynamic_request_groups
        for space in plan.dynamic_reusable_spaces.values():
            for interval in space:
                assert 0 <= interval.start < interval.end <= plan.pool_size

    def test_dynamic_reuse_can_be_disabled(self, moe_trace):
        profile = AllocationProfiler().profile(moe_trace)
        plan = PlanSynthesizer(SynthesizerConfig(enable_dynamic_reuse=False)).synthesize(profile)
        assert plan.dynamic_reusable_spaces == {}

    def test_synthesis_info_populated(self, dense_trace):
        profile = AllocationProfiler().profile(dense_trace)
        plan = PlanSynthesizer().synthesize(profile)
        info = plan.synthesis_info
        assert info["num_static_requests"] == len(profile.static_requests)
        assert info["num_homophase_groups"] > 0
        assert info["synthesis_seconds"] >= 0
        assert info["layers"]["num_layers"] >= 1

    def test_fusion_improves_or_matches_pool_size(self, dense_trace):
        profile = AllocationProfiler().profile(dense_trace)
        fused = PlanSynthesizer(SynthesizerConfig(enable_fusion=True)).synthesize(profile)
        unfused = PlanSynthesizer(SynthesizerConfig(enable_fusion=False)).synthesize(profile)
        assert fused.pool_size <= unfused.pool_size * 1.01


# ---------------------------------------------------------------------- #
# Property-based planning tests
# ---------------------------------------------------------------------- #
@st.composite
def random_requests(draw):
    count = draw(st.integers(min_value=1, max_value=40))
    requests = []
    for req_id in range(count):
        start = draw(st.integers(min_value=0, max_value=200))
        duration = draw(st.integers(min_value=1, max_value=100))
        size = draw(st.integers(min_value=512, max_value=1 << 20))
        phase_index = draw(st.integers(min_value=0, max_value=5))
        requests.append(
            make_request(
                req_id,
                size,
                start,
                start + duration,
                alloc_phase=make_phase(phase_index),
                free_phase=make_phase(phase_index + 1, PhaseKind.BACKWARD),
            )
        )
    return requests


class TestPlanningProperties:
    @given(random_requests())
    @settings(max_examples=50, deadline=None)
    def test_global_plan_never_stomps_memory(self, requests):
        groups = build_homophase_groups(requests)
        fused, _ = fuse_adjacent_groups(groups)
        plan, _ = build_global_plan(fused)
        plan.validate()  # raises on any spatio-temporal conflict
        assert len(plan.decisions) == len(requests)

    @given(random_requests())
    @settings(max_examples=50, deadline=None)
    def test_pool_size_at_least_peak_demand(self, requests):
        groups = build_homophase_groups(requests)
        plan, _ = build_global_plan(groups)
        events = []
        for request in requests:
            events.append((request.alloc_time, request.size))
            events.append((request.free_time, -request.size))
        events.sort()
        live = peak = 0
        for _, delta in events:
            live += delta
            peak = max(peak, live)
        assert plan.pool_size >= peak

    @given(random_requests())
    @settings(max_examples=30, deadline=None)
    def test_pack_requests_is_conflict_free(self, requests):
        plan = pack_requests(requests)
        plan.validate()
        assert plan.num_requests == len(requests)
