"""Smoke tests for every experiment harness and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments import ExperimentResult, available_experiments, run_experiment

ALL_EXPERIMENTS = [
    "fig1b",
    "fig2",
    "fig3",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig8_gmlake_fraglimit",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table1",
    "table2",
    "table3",
]


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        registered = available_experiments()
        for experiment_id in ALL_EXPERIMENTS:
            assert experiment_id in registered

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")


@pytest.mark.parametrize("experiment_id", ALL_EXPERIMENTS)
def test_experiment_quick_run(experiment_id):
    """Every experiment runs in quick mode and produces well-formed rows."""
    result = run_experiment(experiment_id, quick=True)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.rows, f"{experiment_id} produced no rows"
    text = result.to_text()
    assert experiment_id in text
    # Every row shares the same schema family (no missing primary column).
    first_columns = set(result.rows[0])
    for row in result.rows:
        assert set(row) == first_columns


class TestExperimentContent:
    def test_fig2_efficiency_within_bounds(self):
        result = run_experiment("fig2", quick=True)
        for row in result.rows:
            assert 0 < row["memory_efficiency_pct"] <= 100

    def test_fig3_spatial_regularity(self):
        result = run_experiment("fig3", quick=True)
        for row in result.rows:
            assert row["distinct_sizes"] < 64
            assert row["num_allocations"] > row["distinct_sizes"]

    def test_fig8a_stalloc_wins(self):
        result = run_experiment("fig8a", quick=True)
        by_allocator: dict[str, list[float]] = {}
        for row in result.rows:
            by_allocator.setdefault(row["allocator"], []).append(row["memory_efficiency_pct"])
        stalloc_avg = sum(by_allocator["stalloc"]) / len(by_allocator["stalloc"])
        torch_avg = sum(by_allocator["torch2.3"]) / len(by_allocator["torch2.3"])
        assert stalloc_avg >= torch_avg
        assert stalloc_avg > 95

    def test_fig13_breakdown_ordering(self):
        result = run_experiment("fig13", quick=True)
        by_config: dict[str, dict[str, float]] = {}
        for row in result.rows:
            by_config.setdefault(row["config"], {})[row["allocator"]] = row["memory_efficiency_pct"]
        for allocators in by_config.values():
            assert allocators["STAlloc"] >= allocators["STAlloc w/o reuse"] - 0.2
            assert allocators["STAlloc"] >= allocators["Caching Allocator"] - 0.2

    def test_table1_reports_throughput(self):
        result = run_experiment("table1", quick=True)
        assert all(row["throughput_tflops"] > 0 for row in result.rows)

    def test_table2_plan_time_positive(self):
        result = run_experiment("table2", quick=True)
        for row in result.rows:
            assert row["t_plan_s"] >= 0
            assert row["num_requests"] > 0

    def test_table3_static_below_total(self):
        result = run_experiment("table3", quick=True)
        for row in result.rows:
            assert row["static_gib"] <= row["total_gib"] + 1e-6

    def test_fig12_stalloc_overhead_negligible(self):
        result = run_experiment("fig12", quick=True)
        stalloc_rows = [row for row in result.rows if row["allocator"] == "stalloc"]
        assert stalloc_rows
        for row in stalloc_rows:
            assert row["normalized_throughput_pct"] > 99.0


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8a" in out and "table3" in out

    def test_run_single_quick(self, capsys):
        assert main(["run", "fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "GPT-2 memory efficiency" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(ValueError):
            main(["run", "fig99"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_timeline_summary(self, capsys):
        assert main(["timeline", "gpt-tiny", "--pp", "2", "--microbatches", "4"]) == 0
        out = capsys.readouterr().out
        assert "iteration_seconds" in out
        assert "binding_rank" in out

    def test_timeline_unknown_model(self, capsys):
        assert main(["timeline", "no-such-model"]) == 2
        assert "error" in capsys.readouterr().err

    def test_timeline_rejects_bad_parallelism(self, capsys):
        assert main(["timeline", "gpt-tiny", "--pp", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_timeline_chrome_trace_export(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "timeline.json"
        assert (
            main(
                [
                    "timeline", "moe-tiny", "--pp", "2", "--ep", "2",
                    "--microbatches", "2", "--comm-factor", "1.0",
                    "--trace-out", str(out_path),
                ]
            )
            == 0
        )
        payload = json.loads(out_path.read_text())
        events = payload["traceEvents"]
        names = {event["name"] for event in events if event["ph"] != "M"}
        assert {"forward", "backward", "a2a_dispatch", "a2a_combine"} <= names
        slices = [event for event in events if event["ph"] == "X"]
        assert slices and all(event["dur"] > 0 for event in slices)
        # One thread row per (pp, ep) coordinate, each labelled by metadata.
        thread_names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert thread_names == {"pp0/ep0", "pp0/ep1", "pp1/ep0", "pp1/ep1"}
        # Slice count matches the simulation's event count.
        instants = [event for event in events if event["ph"] == "i"]
        from repro.timeline import simulate_timeline
        from repro.workloads.models import get_model
        from repro.workloads.parallelism import ParallelismConfig
        from repro.workloads.training import TrainingConfig

        result = simulate_timeline(
            TrainingConfig(
                model=get_model("moe-tiny"),
                parallelism=ParallelismConfig(
                    pipeline_parallel=2, data_parallel=1, expert_parallel=2
                ),
                micro_batch_size=1,
                num_microbatches=2,
                moe_comm_factor=1.0,
            )
        )
        assert len(slices) + len(instants) == result.num_events
