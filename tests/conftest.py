"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.events import MemoryRequest, Phase, PhaseKind
from repro.gpu.device import Device, GIB, MIB
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.tracegen import TraceGenerator
from repro.workloads.training import TrainingConfig


def make_phase(index: int, kind: PhaseKind = PhaseKind.FORWARD, microbatch: int = 0) -> Phase:
    """Convenience constructor for phases in unit tests."""
    return Phase(index=index, kind=kind, microbatch=microbatch)


def make_request(
    req_id: int,
    size: int,
    alloc_time: int,
    free_time: int,
    *,
    alloc_phase: Phase | None = None,
    free_phase: Phase | None = None,
    dyn: bool = False,
    alloc_module: str = "",
    free_module: str = "",
) -> MemoryRequest:
    """Convenience constructor for memory requests in unit tests."""
    alloc_phase = alloc_phase or make_phase(0, PhaseKind.FORWARD)
    free_phase = free_phase or make_phase(1, PhaseKind.BACKWARD)
    return MemoryRequest(
        req_id=req_id,
        size=size,
        alloc_time=alloc_time,
        free_time=free_time,
        alloc_phase=alloc_phase,
        free_phase=free_phase,
        dyn=dyn,
        alloc_module=alloc_module,
        free_module=free_module or alloc_module,
    )


@pytest.fixture
def device() -> Device:
    """A 16 GiB test device."""
    return Device(name="test-16g", capacity=16 * GIB)


@pytest.fixture
def small_device() -> Device:
    """A 64 MiB device, handy for forcing OOM paths."""
    return Device(name="test-64m", capacity=64 * MIB)


@pytest.fixture(scope="session")
def tiny_dense_config() -> TrainingConfig:
    """A small dense training configuration usable across tests."""
    return TrainingConfig(
        model=get_model("gpt2-345m"),
        parallelism=ParallelismConfig(tensor_parallel=1, pipeline_parallel=4, data_parallel=2),
        micro_batch_size=4,
        num_microbatches=8,
        label="test-dense",
    )


@pytest.fixture(scope="session")
def tiny_moe_config() -> TrainingConfig:
    """A small MoE training configuration usable across tests."""
    return TrainingConfig(
        model=get_model("qwen1.5-moe-a2.7b"),
        parallelism=ParallelismConfig(
            tensor_parallel=1, pipeline_parallel=4, data_parallel=2, expert_parallel=4
        ),
        micro_batch_size=1,
        num_microbatches=4,
        label="test-moe",
    )


@pytest.fixture(scope="session")
def dense_trace(tiny_dense_config):
    """A generated dense trace shared by the integration tests."""
    return TraceGenerator(tiny_dense_config, seed=1).generate()


@pytest.fixture(scope="session")
def moe_trace(tiny_moe_config):
    """A generated MoE trace (with dynamic requests) shared by the tests."""
    return TraceGenerator(tiny_moe_config, seed=1).generate()
