"""Tests for the simulated GPU device and the VMM driver API."""

from __future__ import annotations

import pytest

from repro.gpu.device import Device, GIB, MIB, a800_80gb, align_up, h200_141gb, mi210_64gb
from repro.gpu.errors import DoubleFreeError, InvalidAddressError, OutOfMemoryError
from repro.gpu.virtual_memory import VirtualMemoryManager


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(1024, 512) == 1024

    def test_rounds_up(self):
        assert align_up(1025, 512) == 1536

    def test_zero(self):
        assert align_up(0, 512) == 0

    def test_invalid_alignment(self):
        with pytest.raises(ValueError):
            align_up(100, 0)


class TestDevice:
    def test_capacity_accounting(self, device):
        allocation = device.malloc(1 * GIB)
        assert device.in_use == 1 * GIB
        assert device.free_bytes == 15 * GIB
        device.free(allocation)
        assert device.in_use == 0

    def test_malloc_returns_distinct_addresses(self, device):
        a = device.malloc(MIB)
        b = device.malloc(MIB)
        assert a.address != b.address

    def test_oom_raises_with_context(self, small_device):
        with pytest.raises(OutOfMemoryError) as excinfo:
            small_device.malloc(128 * MIB)
        assert excinfo.value.requested == 128 * MIB
        assert excinfo.value.capacity == small_device.usable_capacity

    def test_oom_after_fill(self, small_device):
        small_device.malloc(60 * MIB)
        with pytest.raises(OutOfMemoryError):
            small_device.malloc(8 * MIB)

    def test_failed_malloc_counted(self, small_device):
        with pytest.raises(OutOfMemoryError):
            small_device.malloc(1 * GIB)
        assert small_device.stats.failed_mallocs == 1

    def test_double_free_detected(self, device):
        allocation = device.malloc(MIB)
        device.free(allocation)
        with pytest.raises(DoubleFreeError):
            device.free(allocation)

    def test_free_by_address(self, device):
        allocation = device.malloc(MIB)
        device.free(allocation.address)
        assert device.in_use == 0

    def test_invalid_address_free(self, device):
        with pytest.raises(InvalidAddressError):
            device.free(0)

    def test_negative_size_rejected(self, device):
        with pytest.raises(ValueError):
            device.malloc(-1)

    def test_zero_size_allowed(self, device):
        allocation = device.malloc(0)
        assert allocation.size == 0
        device.free(allocation)

    def test_peak_tracking(self, device):
        a = device.malloc(2 * GIB)
        device.malloc(1 * GIB)
        device.free(a)
        device.malloc(512 * MIB)
        assert device.stats.peak_in_use == 3 * GIB

    def test_reserved_overhead_reduces_usable(self):
        dev = Device(name="x", capacity=10 * GIB, reserved_overhead=2 * GIB)
        assert dev.usable_capacity == 8 * GIB
        with pytest.raises(OutOfMemoryError):
            dev.malloc(9 * GIB)

    def test_invalid_overhead_rejected(self):
        with pytest.raises(ValueError):
            Device(name="x", capacity=GIB, reserved_overhead=2 * GIB)

    def test_free_all(self, device):
        device.malloc(GIB)
        device.malloc(GIB)
        device.free_all()
        assert device.in_use == 0
        assert device.live_allocations == 0

    def test_can_allocate(self, small_device):
        assert small_device.can_allocate(32 * MIB)
        assert not small_device.can_allocate(65 * MIB)


class TestDevicePresets:
    def test_a800(self):
        assert a800_80gb().capacity == 80 * GIB

    def test_h200(self):
        assert h200_141gb().capacity == 141 * GIB

    def test_mi210(self):
        assert mi210_64gb().capacity == 64 * GIB


class TestVirtualMemoryManager:
    def test_create_handle_charges_device(self, device):
        vmm = VirtualMemoryManager(device)
        vmm.create_handle()
        assert device.in_use == vmm.granule

    def test_handle_rounding(self, device):
        vmm = VirtualMemoryManager(device)
        handle = vmm.create_handle(3 * MIB)
        assert handle.size == 4 * MIB

    def test_release_handle_returns_memory(self, device):
        vmm = VirtualMemoryManager(device)
        handle = vmm.create_handle()
        vmm.release_handle(handle)
        assert device.in_use == 0

    def test_release_unknown_handle_raises(self, device):
        vmm = VirtualMemoryManager(device)
        handle = vmm.create_handle()
        vmm.release_handle(handle)
        with pytest.raises(InvalidAddressError):
            vmm.release_handle(handle)

    def test_map_unmap_cycle(self, device):
        vmm = VirtualMemoryManager(device)
        vrange = vmm.reserve_range(8 * MIB)
        handle = vmm.create_handle()
        vmm.map(vrange.start, handle)
        assert vmm.mapped_bytes == vmm.granule
        returned = vmm.unmap(vrange.start)
        assert returned is handle
        assert vmm.mapped_bytes == 0

    def test_map_outside_range_rejected(self, device):
        vmm = VirtualMemoryManager(device)
        handle = vmm.create_handle()
        with pytest.raises(InvalidAddressError):
            vmm.map(vmm.granule, handle)

    def test_map_twice_rejected(self, device):
        vmm = VirtualMemoryManager(device)
        vrange = vmm.reserve_range(8 * MIB)
        handle = vmm.create_handle()
        other = vmm.create_handle()
        vmm.map(vrange.start, handle)
        with pytest.raises(InvalidAddressError):
            vmm.map(vrange.start, other)

    def test_release_mapped_handle_rejected(self, device):
        vmm = VirtualMemoryManager(device)
        vrange = vmm.reserve_range(8 * MIB)
        handle = vmm.create_handle()
        vmm.map(vrange.start, handle)
        with pytest.raises(InvalidAddressError):
            vmm.release_handle(handle)

    def test_handle_creation_oom_propagates(self, small_device):
        vmm = VirtualMemoryManager(small_device)
        with pytest.raises(OutOfMemoryError):
            for _ in range(64):
                vmm.create_handle()

    def test_op_counters(self, device):
        vmm = VirtualMemoryManager(device)
        vrange = vmm.reserve_range(8 * MIB)
        handle = vmm.create_handle()
        vmm.map(vrange.start, handle)
        vmm.unmap(vrange.start)
        assert vmm.stats.total_ops == 4  # reserve + create + map + unmap

    def test_release_all(self, device):
        vmm = VirtualMemoryManager(device)
        vrange = vmm.reserve_range(16 * MIB)
        for index in range(3):
            handle = vmm.create_handle()
            vmm.map(vrange.start + index * vmm.granule, handle)
        vmm.release_all()
        assert device.in_use == 0
        assert vmm.live_handles == 0
