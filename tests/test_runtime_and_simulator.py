"""Tests for STAlloc's runtime allocator, trace replay, metrics and throughput model."""

from __future__ import annotations

import pytest

from repro.allocators.base import AllocationHints
from repro.core.profiler import AllocationProfiler
from repro.core.stalloc import STAlloc, STAllocConfig
from repro.gpu.device import Device, GIB
from repro.simulator.metrics import MemoryMetrics, fragmentation_reduction
from repro.simulator.replay import replay_trace
from repro.simulator.runner import (
    STALLOC,
    STALLOC_NO_REUSE,
    default_allocator_lineup,
    run_workload,
    run_workload_suite,
)
from repro.simulator.throughput import GPU_SPECS, ThroughputEstimate, ThroughputModel
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.training import TrainingConfig


# ---------------------------------------------------------------------- #
# Profiler
# ---------------------------------------------------------------------- #
class TestProfiler:
    def test_profile_counts(self, dense_trace):
        profile = AllocationProfiler().profile(dense_trace)
        assert profile.num_requests == dense_trace.num_requests
        assert len(profile.dynamic_requests) == dense_trace.num_dynamic_requests
        assert profile.peak_allocated_bytes() == dense_trace.peak_allocated_bytes()

    def test_summary_fields(self, moe_trace):
        summary = AllocationProfiler().profile(moe_trace).summary()
        assert summary["num_dynamic_requests"] > 0
        assert summary["static_bytes"] > summary["dynamic_bytes"]

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            AllocationProfiler(iterations=0)


# ---------------------------------------------------------------------- #
# STAlloc runtime allocator
# ---------------------------------------------------------------------- #
class TestRuntimeAllocator:
    def test_replay_of_profiled_trace_has_no_mismatches(self, dense_trace):
        stalloc = STAlloc.from_trace(dense_trace)
        device = Device(name="test", capacity=80 * GIB)
        allocator = stalloc.build_runtime_allocator(device)
        result = replay_trace(dense_trace, allocator)
        assert result.success
        assert result.allocator_stats["plan_mismatches"] == 0
        assert result.allocator_stats["fallback_allocs"] == 0

    def test_reserved_equals_pool_for_static_trace(self, dense_trace):
        stalloc = STAlloc.from_trace(dense_trace)
        device = Device(name="test", capacity=80 * GIB)
        allocator = stalloc.build_runtime_allocator(device)
        replay_trace(dense_trace, allocator)
        assert allocator.reserved_bytes == stalloc.static_pool_bytes

    def test_memory_efficiency_beats_caching(self, dense_trace, tiny_dense_config):
        runs = run_workload_suite(tiny_dense_config, ["torch2.3", STALLOC], device_name="A800-80GB")
        assert runs[STALLOC].memory_efficiency >= runs["torch2.3"].memory_efficiency
        assert runs[STALLOC].memory_efficiency > 0.95

    def test_moe_dynamic_requests_are_served(self, moe_trace):
        stalloc = STAlloc.from_trace(moe_trace)
        device = Device(name="test", capacity=200 * GIB)
        allocator = stalloc.build_runtime_allocator(device)
        result = replay_trace(moe_trace, allocator)
        assert result.success
        stats = result.allocator_stats
        assert stats["dynamic_pool_bytes"] + stats["dynamic_fallback_bytes"] > 0

    def test_dynamic_reuse_reduces_fallback(self, moe_trace):
        device_a = Device(name="a", capacity=200 * GIB)
        device_b = Device(name="b", capacity=200 * GIB)
        with_reuse = STAlloc.from_trace(moe_trace).build_runtime_allocator(device_a)
        without_reuse = STAlloc.from_trace(
            moe_trace, STAllocConfig(enable_dynamic_reuse=False)
        ).build_runtime_allocator(device_b)
        result_with = replay_trace(moe_trace, with_reuse)
        result_without = replay_trace(moe_trace, without_reuse)
        assert (
            result_with.allocator_stats["fallback_bytes"]
            <= result_without.allocator_stats["fallback_bytes"]
        )
        assert result_with.metrics.peak_reserved_bytes <= result_without.metrics.peak_reserved_bytes

    def test_unexpected_request_falls_back(self, dense_trace):
        stalloc = STAlloc.from_trace(dense_trace)
        device = Device(name="test", capacity=80 * GIB)
        allocator = stalloc.build_runtime_allocator(device)
        allocator.allocate(10_000_000, 4096, AllocationHints())  # never profiled
        assert allocator.stats.plan_mismatches == 1
        assert allocator.stats.fallback_allocs == 1
        allocator.free(10_000_000)

    def test_size_mismatch_falls_back_without_stomping(self, dense_trace):
        stalloc = STAlloc.from_trace(dense_trace)
        device = Device(name="test", capacity=80 * GIB)
        allocator = stalloc.build_runtime_allocator(device)
        first_alloc = next(e for e in dense_trace.events if e.is_alloc())
        allocator.allocate(first_alloc.req_id, first_alloc.size + 512, AllocationHints())
        assert allocator.stats.plan_mismatches == 1

    def test_release_returns_pool_to_device(self, dense_trace):
        stalloc = STAlloc.from_trace(dense_trace)
        device = Device(name="test", capacity=80 * GIB)
        allocator = stalloc.build_runtime_allocator(device)
        assert device.in_use == stalloc.static_pool_bytes
        allocator.release()
        assert device.in_use == 0

    def test_planning_report(self, dense_trace):
        stalloc = STAlloc.from_trace(dense_trace)
        report = stalloc.planning_report()
        assert report["num_requests"] == dense_trace.num_requests
        assert report["static_pool_bytes"] == stalloc.static_pool_bytes
        assert report["plan_overhead_ratio"] >= 1.0


# ---------------------------------------------------------------------- #
# Metrics / replay
# ---------------------------------------------------------------------- #
class TestMetrics:
    def test_efficiency_and_fragmentation(self):
        metrics = MemoryMetrics(peak_allocated_bytes=80, peak_reserved_bytes=100)
        assert metrics.memory_efficiency == pytest.approx(0.8)
        assert metrics.fragmentation_ratio == pytest.approx(0.2)
        assert metrics.fragmentation_bytes == 20

    def test_zero_reserved_is_perfect(self):
        assert MemoryMetrics(0, 0).memory_efficiency == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MemoryMetrics(-1, 0)

    def test_fragmentation_reduction(self):
        baseline = MemoryMetrics(80, 100)
        improved = MemoryMetrics(80, 82)
        assert fragmentation_reduction(baseline, improved) == pytest.approx(0.9)

    def test_as_dict_keys(self):
        data = MemoryMetrics(2 * GIB, 4 * GIB).as_dict()
        assert data["memory_efficiency"] == pytest.approx(0.5)
        assert data["peak_reserved_gib"] == pytest.approx(4.0)


class TestReplay:
    def test_replay_counts_events(self, dense_trace, device):
        from repro.allocators.caching import CachingAllocator

        allocator = CachingAllocator(Device(name="big", capacity=200 * GIB))
        result = replay_trace(dense_trace, allocator)
        assert result.success
        assert result.events_replayed == dense_trace.num_events
        assert result.metrics.peak_allocated_bytes == dense_trace.peak_allocated_bytes()

    def test_replay_detects_oom(self, dense_trace):
        from repro.allocators.caching import CachingAllocator

        tiny = Device(name="tiny", capacity=1 * GIB)
        allocator = CachingAllocator(tiny)
        result = replay_trace(dense_trace, allocator)
        assert not result.success
        assert result.oom_at_event is not None
        assert result.oom_request_bytes > 0

    def test_replay_continue_after_oom(self, dense_trace):
        from repro.allocators.caching import CachingAllocator

        tiny = Device(name="tiny", capacity=1 * GIB)
        allocator = CachingAllocator(tiny)
        result = replay_trace(dense_trace, allocator, stop_on_oom=False)
        assert not result.success
        assert result.events_replayed > 0


# ---------------------------------------------------------------------- #
# Throughput model
# ---------------------------------------------------------------------- #
class TestThroughputModel:
    def _config(self, **kwargs) -> TrainingConfig:
        defaults = dict(
            model=get_model("qwen2.5-14b"),
            parallelism=ParallelismConfig(tensor_parallel=2, pipeline_parallel=2, data_parallel=4,
                                          virtual_pipeline_chunks=kwargs.pop("vpp", 1)),
            micro_batch_size=1,
            num_microbatches=8,
        )
        defaults.update(kwargs)
        return TrainingConfig(**defaults)

    def test_recompute_lowers_reported_tflops(self):
        model = ThroughputModel(GPU_SPECS["H200-141GB"])
        assert model.tflops(self._config(recompute=True)) < model.tflops(self._config())

    def test_vpp_raises_tflops(self):
        model = ThroughputModel(GPU_SPECS["H200-141GB"])
        assert model.tflops(self._config(vpp=2)) > model.tflops(self._config())

    def test_larger_tp_lowers_tflops(self):
        model = ThroughputModel(GPU_SPECS["H200-141GB"])
        tp4 = self._config()
        tp4 = tp4.with_(parallelism=ParallelismConfig(tensor_parallel=4, pipeline_parallel=2, data_parallel=2))
        assert model.tflops(tp4) < model.tflops(self._config())

    def test_table1_ordering(self):
        """Original (VPP) > disable VPP > TP=4 and recompute (Table 1)."""
        model = ThroughputModel(GPU_SPECS["H200-141GB"])
        original = model.tflops(self._config(vpp=2))
        no_vpp = model.tflops(self._config())
        recompute = model.tflops(self._config(recompute=True))
        tp4 = model.tflops(
            self._config().with_(
                parallelism=ParallelismConfig(tensor_parallel=4, pipeline_parallel=2, data_parallel=2)
            )
        )
        assert original > no_vpp > recompute
        assert original > tp4 > recompute

    def test_allocator_overhead_reduces_throughput(self):
        model = ThroughputModel(GPU_SPECS["A800-80GB"])
        config = self._config()
        assert model.tflops(config, allocator_overhead_seconds=5.0) < model.tflops(config)

    def test_bubble_fraction_shrinks_with_vpp(self):
        model = ThroughputModel(GPU_SPECS["A800-80GB"])
        assert model.pipeline_bubble_fraction(self._config(vpp=2)) < model.pipeline_bubble_fraction(
            self._config()
        )

    def test_tflops_below_peak(self):
        model = ThroughputModel(GPU_SPECS["H200-141GB"])
        assert model.tflops(self._config()) < GPU_SPECS["H200-141GB"].peak_tflops

    # ------------------------------------------------------------------ #
    # Edge cases
    # ------------------------------------------------------------------ #
    def test_pp1_has_zero_bubble(self):
        model = ThroughputModel(GPU_SPECS["A800-80GB"])
        config = self._config().with_(
            parallelism=ParallelismConfig(tensor_parallel=2, data_parallel=4)
        )
        assert model.pipeline_bubble_fraction(config) == 0.0
        estimate = model.estimate(config)
        assert estimate.bubble_fraction == 0.0

    def test_tp1_has_no_communication_penalty(self):
        model = ThroughputModel(GPU_SPECS["A800-80GB"])
        config = self._config().with_(
            parallelism=ParallelismConfig(pipeline_parallel=2, data_parallel=4)
        )
        assert model.communication_multiplier(config) == 1.0

    def test_zero_time_guards(self):
        """A degenerate estimate (zero iteration time) must report zero
        throughput instead of dividing by zero."""
        estimate = ThroughputEstimate(
            iteration_seconds=0.0,
            model_flops_per_iteration=1e12,
            num_gpus=8,
            tokens_per_iteration=1024,
        )
        assert estimate.tflops_per_gpu == 0.0
        assert estimate.tokens_per_second == 0.0
        assert estimate.mfu == 0.0

    def test_mfu_requires_a_known_peak(self):
        with_peak = ThroughputEstimate(
            iteration_seconds=1.0,
            model_flops_per_iteration=1e12,
            num_gpus=1,
            peak_tflops=100.0,
        )
        without_peak = ThroughputEstimate(
            iteration_seconds=1.0,
            model_flops_per_iteration=1e12,
            num_gpus=1,
        )
        assert with_peak.mfu == pytest.approx(0.01)
        assert without_peak.mfu == 0.0

    def test_estimate_records_backend_and_bubble(self):
        model = ThroughputModel(GPU_SPECS["A800-80GB"])
        config = self._config()
        estimate = model.estimate(config)
        assert estimate.source == "analytical"
        assert estimate.comm_seconds == 0.0
        assert estimate.bubble_fraction == pytest.approx(
            model.pipeline_bubble_fraction(config)
        )
        assert estimate.peak_tflops == GPU_SPECS["A800-80GB"].peak_tflops


# ---------------------------------------------------------------------- #
# Runner
# ---------------------------------------------------------------------- #
class TestRunner:
    def test_run_workload_baseline(self, tiny_dense_config):
        run = run_workload(tiny_dense_config, "torch2.3", device_name="A800-80GB")
        assert run.success
        assert 0.0 < run.memory_efficiency <= 1.0

    def test_run_workload_stalloc_has_planning_report(self, tiny_dense_config):
        run = run_workload(tiny_dense_config, STALLOC, device_name="A800-80GB")
        assert run.planning_report["static_pool_bytes"] > 0

    def test_run_workload_with_throughput(self, tiny_dense_config):
        run = run_workload(tiny_dense_config, "torch2.3", device_name="A800-80GB", with_throughput=True)
        assert run.tflops is not None and run.tflops > 0

    def test_suite_shares_trace(self, tiny_dense_config):
        runs = run_workload_suite(tiny_dense_config, ["torch2.0", "torch2.3"], device_name="A800-80GB")
        assert set(runs) == {"torch2.0", "torch2.3"}
        assert runs["torch2.0"].replay.metrics.peak_allocated_bytes == runs[
            "torch2.3"
        ].replay.metrics.peak_allocated_bytes

    def test_default_lineup(self):
        lineup = default_allocator_lineup()
        assert lineup[-1] == STALLOC and "torch2.0" in lineup

    def test_custom_capacity_forces_oom(self, tiny_dense_config):
        run = run_workload(tiny_dense_config, "torch2.3", device_name="A800-80GB", device_capacity_gib=1)
        assert not run.success
        assert run.as_dict()["status" if "status" in run.as_dict() else "success"] is not None

    def test_stalloc_no_reuse_variant(self, tiny_moe_config):
        run = run_workload(tiny_moe_config, STALLOC_NO_REUSE, device_name="A800-80GB")
        assert run.success
