"""Benchmark regenerating table3 of the paper via its experiment harness."""


def test_table3(regenerate):
    result = regenerate("table3", quick=True)
    assert result.experiment_id == "table3"
