"""Benchmark regenerating table2 of the paper via its experiment harness."""


def test_table2(regenerate):
    result = regenerate("table2", quick=True)
    assert result.experiment_id == "table2"
