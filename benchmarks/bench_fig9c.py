"""Benchmark regenerating fig9c of the paper via its experiment harness."""


def test_fig9c(regenerate):
    result = regenerate("fig9c", quick=True)
    assert result.experiment_id == "fig9c"
