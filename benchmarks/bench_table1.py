"""Benchmark regenerating table1 of the paper via its experiment harness."""


def test_table1(regenerate):
    result = regenerate("table1", quick=False)
    assert result.experiment_id == "table1"
