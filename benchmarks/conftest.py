"""Shared helper for the benchmark harness.

Every benchmark regenerates one table or figure of the paper through its
experiment harness, times it with pytest-benchmark, and prints the resulting
rows so the run's output doubles as the reproduced artifact.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentResult, run_experiment


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run an experiment exactly once under the benchmark timer and print it."""

    def _run(experiment_id: str, **kwargs) -> ExperimentResult:
        result = benchmark.pedantic(
            lambda: run_experiment(experiment_id, **kwargs), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(result.to_text())
        assert result.rows
        return result

    return _run
