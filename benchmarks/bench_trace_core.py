"""Core-throughput benchmark: events/sec for trace build, analytics, replay, timeline.

This is the perf trajectory for the columnar trace core (ROADMAP open item 1).
It measures four hot layers at three scales and reports events/sec:

* ``trace_build``  -- ``TraceGenerator.generate()`` (event emission).
* ``analytics``    -- ``peak_allocated_bytes`` + ``comm_peak_bytes`` +
                      ``size_histogram`` + ``allocation_sizes`` on a freshly
                      constructed ``Trace`` view (cold caches each rep).
* ``replay_native``-- ``replay_trace`` against the native allocator (the
                      profiler mode; batch-replayable).
* ``replay_caching``-- ``replay_trace`` against torch2.3 (sequential state
                      machine; exercises the event-by-event fallback).
* ``timeline``     -- ``simulate_timeline`` with the result memo cleared each
                      rep (steady state: the compiled-plan cache stays warm,
                      exactly like a sweep evaluating many points of one
                      geometry).
* ``gen_trace_build`` / ``gen_replay_native`` / ``gen_timeline`` -- the same
                      build, replay, and timeline layers on a *generation*
                      variant of the preset (prefill + 64 decode steps with
                      per-step KV-cache re-allocation), the dynamic-size
                      stream that stresses the decode hot paths.

Usage::

    PYTHONPATH=src python benchmarks/bench_trace_core.py                 # all presets
    PYTHONPATH=src python benchmarks/bench_trace_core.py --preset gpt-tiny
    PYTHONPATH=src python benchmarks/bench_trace_core.py --json out.json
    PYTHONPATH=src python benchmarks/bench_trace_core.py --preset gpt-tiny \
        --check benchmarks/BENCH_trace_core.json   # CI perf smoke (3x floor)

``--check`` compares measured events/sec against the most recent trajectory
entry in ``BENCH_trace_core.json`` and fails (exit 1) only if a metric drops
more than 3x below the recorded floor -- loose enough for CI noise, tight
enough to catch an accidental return to object-per-event hot paths.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import dataclasses

from repro.allocators.registry import create_allocator
from repro.gpu.device import GIB, Device
from repro.gpu.specs import get_gpu
from repro.simulator.replay import replay_trace
from repro.timeline.simulator import clear_timeline_memo, simulate_timeline
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.tracegen import TraceGenerator
from repro.workloads.training import TrainingConfig

#: Regression gate for --check: fail when measured < recorded / 3.
CHECK_RATIO = 3.0

#: Benchmark configurations.  "job-smoke" mirrors the sweep preset of the same
#: name (gpt2-345m, pp=4 dp=2, mbs=4, m=4, scale 0.5); the tiny ones match the
#: golden-fixture shapes with more microbatches for stable timing.
PRESETS: dict[str, dict] = {
    "gpt-tiny": {
        "model": "gpt-tiny",
        "parallelism": {"pipeline_parallel": 2, "data_parallel": 2},
        "micro_batch_size": 2,
        "num_microbatches": 8,
        "scale": 1.0,
    },
    "moe-tiny": {
        "model": "moe-tiny",
        "parallelism": {"pipeline_parallel": 2, "data_parallel": 4, "expert_parallel": 4},
        "micro_batch_size": 2,
        "num_microbatches": 8,
        "moe_imbalance": 0.6,
        "moe_comm_factor": 1.0,
        "scale": 1.0,
    },
    "job-smoke": {
        "model": "gpt2-345m",
        "parallelism": {"pipeline_parallel": 4, "data_parallel": 2},
        "micro_batch_size": 4,
        "num_microbatches": 4,
        "scale": 0.5,
    },
}


def build_config(preset: str) -> tuple[TrainingConfig, float]:
    spec = PRESETS[preset]
    parallelism = ParallelismConfig(**spec["parallelism"])
    config = TrainingConfig(
        model=get_model(spec["model"]),
        parallelism=parallelism,
        micro_batch_size=spec["micro_batch_size"],
        num_microbatches=spec["num_microbatches"],
        moe_imbalance=spec.get("moe_imbalance", 0.3),
        moe_comm_factor=spec.get("moe_comm_factor", 0.0),
    )
    return config, spec["scale"]


def _measure(fn, events: int, *, min_seconds: float = 1.0, min_reps: int = 3) -> dict:
    """Run ``fn`` until ``min_seconds`` of wall time accumulate; report ev/s."""
    fn()  # warm-up (imports, first-touch caches shared by old and new code)
    reps = 0
    start = time.perf_counter()
    elapsed = 0.0
    while elapsed < min_seconds or reps < min_reps:
        fn()
        reps += 1
        elapsed = time.perf_counter() - start
    rate = events * reps / elapsed
    return {
        "events": int(events),
        "reps": int(reps),
        "seconds": round(elapsed, 4),
        "events_per_sec": int(rate),
    }


def bench_preset(preset: str) -> dict:
    config, scale = build_config(preset)

    generator = TraceGenerator(config, scale=scale)
    trace = generator.generate()
    num_events = len(trace.events)
    # Keep a plain object list around so analytics timing always starts from
    # the object representation (cold column build included each rep).
    events = list(trace.events)
    metadata = trace.metadata
    phases = trace.phases
    spans = trace.module_spans
    trace_cls = type(trace)

    def run_build():
        TraceGenerator(config, scale=scale).generate()

    def run_analytics():
        view = trace_cls(
            events=events, metadata=metadata, phases=phases, module_spans=spans
        )
        view.peak_allocated_bytes()
        view.comm_peak_bytes()
        view.size_histogram()
        view.allocation_sizes()

    def make_replay(name: str):
        def run_replay():
            device = Device(name="bench", capacity=512 * GIB)
            allocator = create_allocator(name, device)
            result = replay_trace(trace, allocator)
            if not result.success:
                raise RuntimeError(f"replay OOM in benchmark ({name})")

        return run_replay

    def run_timeline():
        clear_timeline_memo()
        simulate_timeline(config, seed=0, scale=scale)

    # Hierarchical pricing: a 2-node tiered fabric plus partial overlap takes
    # the per-rank tier-mix a2a path instead of the flat single-rate branch.
    tiered_gpu = dataclasses.replace(
        get_gpu("A800-80GB"),
        gpus_per_node=4,
        intra_node_gbytes_per_sec=160.0,
        inter_node_gbytes_per_sec=25.0,
    )
    tiered_config = config.with_(comm_overlap_factor=0.5)

    def run_timeline_tiered():
        clear_timeline_memo()
        simulate_timeline(tiered_config, gpu=tiered_gpu, seed=0, scale=scale)

    # Generation twin of the preset: prefill plus 64 decode steps, so the
    # per-step KV re-allocation and decode-event paths dominate the stream.
    gen_config = config.with_(workload_kind="generation", decode_steps=64)
    gen_trace = TraceGenerator(gen_config, scale=scale).generate()
    gen_events = len(gen_trace.events)

    def run_gen_build():
        TraceGenerator(gen_config, scale=scale).generate()

    def run_gen_replay():
        device = Device(name="bench", capacity=512 * GIB)
        allocator = create_allocator("native", device)
        result = replay_trace(gen_trace, allocator)
        if not result.success:
            raise RuntimeError("replay OOM in benchmark (gen/native)")

    def run_gen_timeline():
        clear_timeline_memo()
        simulate_timeline(gen_config, seed=0, scale=scale)

    clear_timeline_memo()
    timeline_events = simulate_timeline(config, seed=0, scale=scale).num_events
    clear_timeline_memo()
    tiered_events = simulate_timeline(
        tiered_config, gpu=tiered_gpu, seed=0, scale=scale
    ).num_events
    clear_timeline_memo()
    gen_timeline_events = simulate_timeline(gen_config, seed=0, scale=scale).num_events

    results = {
        "trace_build": _measure(run_build, num_events),
        "analytics": _measure(run_analytics, num_events),
        "replay_native": _measure(make_replay("native"), num_events),
        "replay_caching": _measure(make_replay("torch2.3"), num_events),
        "timeline": _measure(run_timeline, timeline_events),
        "timeline_tiered": _measure(run_timeline_tiered, tiered_events),
        "gen_trace_build": _measure(run_gen_build, gen_events),
        "gen_replay_native": _measure(run_gen_replay, gen_events),
        "gen_timeline": _measure(run_gen_timeline, gen_timeline_events),
    }
    return results


def latest_floor(trajectory_path: Path, preset: str) -> dict:
    data = json.loads(trajectory_path.read_text())
    entry = data["trajectory"][-1]
    return entry["results"][preset]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", choices=[*PRESETS, "all"], default="all")
    parser.add_argument("--json", type=Path, help="write results as JSON")
    parser.add_argument(
        "--check",
        type=Path,
        help="compare against the latest BENCH_trace_core.json entry; "
        f"fail if any metric is >{CHECK_RATIO:g}x below the recorded floor",
    )
    args = parser.parse_args(argv)

    presets = list(PRESETS) if args.preset == "all" else [args.preset]
    results: dict[str, dict] = {}
    for preset in presets:
        results[preset] = bench_preset(preset)
        print(f"== {preset} ==")
        for metric, row in results[preset].items():
            print(
                f"  {metric:16s} {row['events_per_sec']:>12,d} ev/s"
                f"  ({row['events']} events x {row['reps']} reps in {row['seconds']}s)"
            )

    if args.json:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")

    if args.check:
        failed = False
        for preset in presets:
            floor = latest_floor(args.check, preset)
            for metric, row in results[preset].items():
                recorded = floor.get(metric, {}).get("events_per_sec")
                if recorded is None:
                    continue
                measured = row["events_per_sec"]
                bound = recorded / CHECK_RATIO
                status = "ok" if measured >= bound else "FAIL"
                print(
                    f"check {preset}/{metric}: measured {measured:,d} ev/s vs "
                    f"floor {recorded:,d}/{CHECK_RATIO:g} = {int(bound):,d} ev/s [{status}]"
                )
                if measured < bound:
                    failed = True
        if failed:
            print("perf smoke FAILED: events/sec regressed more than "
                  f"{CHECK_RATIO:g}x below the recorded floor")
            return 1
        print("perf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
