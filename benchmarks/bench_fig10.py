"""Benchmark regenerating fig10 of the paper via its experiment harness."""


def test_fig10(regenerate):
    result = regenerate("fig10", quick=True)
    assert result.experiment_id == "fig10"
