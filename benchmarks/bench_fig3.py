"""Benchmark regenerating fig3 of the paper via its experiment harness."""


def test_fig3(regenerate):
    result = regenerate("fig3", quick=False)
    assert result.experiment_id == "fig3"
