"""Benchmark regenerating fig8c of the paper via its experiment harness."""


def test_fig8c(regenerate):
    result = regenerate("fig8c", quick=True)
    assert result.experiment_id == "fig8c"
