"""Benchmarks for the sweep engine: cold, cached, parallel, and obs overhead.

The cold/warm pair quantifies what the persistent trace/plan/result cache
buys (warm reruns should be orders of magnitude faster); the parallel case
measures the process fan-out on the same grid.

Run directly, the module measures the observability tax -- the same sweep
with and without an ``--obs-out`` NDJSON tracer installed -- and records it
in the ``BENCH_sweep.json`` perf trajectory::

    PYTHONPATH=src python benchmarks/bench_sweep.py                # print
    PYTHONPATH=src python benchmarks/bench_sweep.py --json out.json
    PYTHONPATH=src python benchmarks/bench_sweep.py \
        --check benchmarks/BENCH_sweep.json   # fail if overhead > 10%

Tracing must stay near-free: the recorded entries measure the overhead on
the ``job-smoke`` spec at well under 2%; ``--check`` gates at a deliberately
loose 10% so shared-runner timing noise cannot flake CI while a regression
to per-span I/O or allocation on the hot path still fails loudly.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.obs.tracer import shutdown as obs_shutdown
from repro.sweep import load_spec, run_sweep

#: Regression gate for --check: fail when measured overhead exceeds this.
CHECK_MAX_OVERHEAD_PCT = 10.0


def test_sweep_quick_grid_cold(benchmark, tmp_path):
    """24-point grid, serial, empty cache: every trace/plan is synthesized."""
    spec = load_spec("quick-grid")
    result = benchmark.pedantic(
        lambda: run_sweep(spec, jobs=1, cache_dir=tmp_path / "cold", reuse_results=False),
        rounds=1,
        iterations=1,
    )
    assert result.num_points >= 24
    assert all(row["status"] == "ok" for row in result.rows)


def test_sweep_quick_grid_cached(benchmark, tmp_path):
    """Same grid served entirely from the persistent result cache."""
    spec = load_spec("quick-grid")
    cache_dir = tmp_path / "cache"
    run_sweep(spec, jobs=1, cache_dir=cache_dir)  # prime every cache layer
    result = benchmark.pedantic(
        lambda: run_sweep(spec, jobs=1, cache_dir=cache_dir), rounds=3, iterations=1
    )
    assert result.num_cached == result.num_points


def test_sweep_quick_grid_parallel(benchmark, tmp_path):
    """Same grid fanned out over 4 worker processes (cache only for traces)."""
    spec = load_spec("quick-grid")
    result = benchmark.pedantic(
        lambda: run_sweep(spec, jobs=4, cache_dir=tmp_path / "par", reuse_results=False),
        rounds=1,
        iterations=1,
    )
    assert result.num_points >= 24


# ---------------------------------------------------------------------- #
# Observability overhead (the BENCH_sweep.json trajectory)
# ---------------------------------------------------------------------- #
def _run_once(spec, obs_path: Path | None = None) -> tuple[float, int]:
    """One cache-less serial sweep; returns (wall seconds, rows).

    The traced variant times the whole tracer lifecycle -- configure, the
    sweep, and the final flush+close -- since that is what a user's
    ``--obs-out`` run pays.
    """
    started = time.perf_counter()
    if obs_path is not None:
        obs.configure(ndjson_path=obs_path)
    try:
        result = run_sweep(spec, jobs=1, cache_dir=None)
    finally:
        if obs_path is not None:
            obs_shutdown()
    return time.perf_counter() - started, len(result.rows)


def measure_obs_overhead(
    spec_name: str = "job-smoke", *, rounds: int = 15, scratch: Path | None = None
) -> dict:
    """Paired wall-time comparison of ``spec_name`` with tracing off vs on.

    Serial and cache-less so the measurement is pure compute (no pool
    startup or disk-cache variance).  Each round runs an untraced sweep and
    a traced sweep back to back and records the *paired* difference; the
    overhead estimate is the median of those differences.  Pairing is what
    makes sub-100ms walls measurable: machine-load drift moves both runs of
    a pair together and cancels, where independent medians (or even
    min-of-N) still swing by several percent between invocations.
    """
    spec = load_spec(spec_name)
    scratch = Path(scratch) if scratch is not None else Path(tempfile.mkdtemp(prefix="bench-obs-"))
    _run_once(spec)  # warm-up: imports and in-process caches
    off: list[float] = []
    deltas: list[float] = []
    rows = spans = 0
    for index in range(rounds):
        # Best-of-2 per arm: scheduler hiccups are one-sided (they only ever
        # add time), so the min of two back-to-back runs sheds most of the
        # per-run tail noise before the pair is differenced.
        elapsed_off, rows = _run_once(spec)
        elapsed_off = min(elapsed_off, _run_once(spec)[0])
        off.append(elapsed_off)
        path = scratch / f"obs-{index}.ndjson"
        elapsed_on, _ = _run_once(spec, obs_path=path)
        elapsed_on = min(elapsed_on, _run_once(spec, obs_path=path)[0])
        deltas.append(elapsed_on - elapsed_off)
        spans = sum(
            1 for line in path.read_text().splitlines() if '"type":"span"' in line
        )
    base = statistics.median(off)
    overhead = statistics.median(deltas)
    return {
        "spec": spec_name,
        "rows": rows,
        "rounds": rounds,
        "spans_per_run": spans,
        "wall_seconds_off": round(base, 4),
        "wall_seconds_on": round(base + overhead, 4),
        "overhead_seconds": round(overhead, 5),
        "overhead_pct": round(100.0 * overhead / base, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", default="job-smoke", help="sweep preset to measure")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--json", type=Path, help="write the measurement as JSON")
    parser.add_argument(
        "--check",
        type=Path,
        help="print the latest BENCH_sweep.json entry next to the measurement; "
        f"fail if measured overhead exceeds {CHECK_MAX_OVERHEAD_PCT:g}%%",
    )
    args = parser.parse_args(argv)

    measured = measure_obs_overhead(args.spec, rounds=args.rounds)
    print(f"== obs overhead on {measured['spec']} ==")
    print(
        f"  off {measured['wall_seconds_off']:.3f}s | on {measured['wall_seconds_on']:.3f}s"
        f" | overhead {measured['overhead_pct']:+.2f}%"
        f" ({measured['spans_per_run']} spans/run, median of {measured['rounds']})"
    )

    if args.json:
        args.json.write_text(json.dumps(measured, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")

    if args.check:
        data = json.loads(args.check.read_text())
        recorded = data["trajectory"][-1]["results"].get(measured["spec"])
        if recorded is not None:
            print(
                f"check {measured['spec']}: measured {measured['overhead_pct']:+.2f}% vs "
                f"recorded {recorded['overhead_pct']:+.2f}% "
                f"(gate {CHECK_MAX_OVERHEAD_PCT:g}%)"
            )
        if measured["overhead_pct"] > CHECK_MAX_OVERHEAD_PCT:
            print(
                f"obs overhead smoke FAILED: {measured['overhead_pct']:+.2f}% exceeds "
                f"the {CHECK_MAX_OVERHEAD_PCT:g}% gate"
            )
            return 1
        print("obs overhead smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
