"""Benchmarks for the sweep engine: cold, cached, and parallel execution.

The cold/warm pair quantifies what the persistent trace/plan/result cache
buys (warm reruns should be orders of magnitude faster); the parallel case
measures the process fan-out on the same grid.
"""

from __future__ import annotations

from repro.sweep import load_spec, run_sweep


def test_sweep_quick_grid_cold(benchmark, tmp_path):
    """24-point grid, serial, empty cache: every trace/plan is synthesized."""
    spec = load_spec("quick-grid")
    result = benchmark.pedantic(
        lambda: run_sweep(spec, jobs=1, cache_dir=tmp_path / "cold", reuse_results=False),
        rounds=1,
        iterations=1,
    )
    assert result.num_points >= 24
    assert all(row["status"] == "ok" for row in result.rows)


def test_sweep_quick_grid_cached(benchmark, tmp_path):
    """Same grid served entirely from the persistent result cache."""
    spec = load_spec("quick-grid")
    cache_dir = tmp_path / "cache"
    run_sweep(spec, jobs=1, cache_dir=cache_dir)  # prime every cache layer
    result = benchmark.pedantic(
        lambda: run_sweep(spec, jobs=1, cache_dir=cache_dir), rounds=3, iterations=1
    )
    assert result.num_cached == result.num_points


def test_sweep_quick_grid_parallel(benchmark, tmp_path):
    """Same grid fanned out over 4 worker processes (cache only for traces)."""
    spec = load_spec("quick-grid")
    result = benchmark.pedantic(
        lambda: run_sweep(spec, jobs=4, cache_dir=tmp_path / "par", reuse_results=False),
        rounds=1,
        iterations=1,
    )
    assert result.num_points >= 24
