"""Benchmark regenerating fig13 of the paper via its experiment harness."""


def test_fig13(regenerate):
    result = regenerate("fig13", quick=True)
    assert result.experiment_id == "fig13"
