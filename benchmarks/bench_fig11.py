"""Benchmark regenerating fig11 of the paper via its experiment harness."""


def test_fig11(regenerate):
    result = regenerate("fig11", quick=False)
    assert result.experiment_id == "fig11"
