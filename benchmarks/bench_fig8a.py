"""Benchmark regenerating fig8a of the paper via its experiment harness."""


def test_fig8a(regenerate):
    result = regenerate("fig8a", quick=False)
    assert result.experiment_id == "fig8a"
