"""Benchmark regenerating fig9a of the paper via its experiment harness."""


def test_fig9a(regenerate):
    result = regenerate("fig9a", quick=False)
    assert result.experiment_id == "fig9a"
