"""Micro-benchmarks of the offline pipeline's building blocks.

Plan synthesis must stay cheap (Table 2 reports seconds to a few minutes even
for 280k-request MoE traces), so these benchmarks time the profiler pairing,
the static plan synthesis, and the dynamic-reusable-space sweep separately on
a mid-size trace, plus the runtime replay throughput of the finished plan.
"""

from __future__ import annotations

import pytest

from repro.core.profiler import AllocationProfiler
from repro.core.stalloc import STAlloc
from repro.core.synthesizer import PlanSynthesizer
from repro.core.dynamic_space import locate_dynamic_reusable_spaces
from repro.experiments.common import A800_WORKLOADS
from repro.gpu.device import Device, GIB
from repro.simulator.replay import replay_trace
from repro.simulator.runner import generate_trace


@pytest.fixture(scope="module")
def dense_trace():
    return generate_trace(A800_WORKLOADS["llama2-7b"].preset("R"))


@pytest.fixture(scope="module")
def moe_trace():
    return generate_trace(A800_WORKLOADS["qwen1.5-moe-a2.7b"].preset("R"))


def test_profiler_pairing(benchmark, dense_trace):
    profile = benchmark(lambda: AllocationProfiler().profile(dense_trace))
    assert profile.num_requests == dense_trace.num_requests


def test_static_plan_synthesis(benchmark, dense_trace):
    profile = AllocationProfiler().profile(dense_trace)
    plan = benchmark(lambda: PlanSynthesizer().synthesize(profile))
    assert plan.pool_size > 0


def test_dynamic_space_location(benchmark, moe_trace):
    profile = AllocationProfiler().profile(moe_trace)
    static_plan = PlanSynthesizer().synthesize(profile).static_plan
    spaces = benchmark(
        lambda: locate_dynamic_reusable_spaces(
            profile.dynamic_requests, static_plan, profile.module_spans
        )
    )
    assert spaces


def test_runtime_replay(benchmark, dense_trace):
    stalloc = STAlloc.from_trace(dense_trace)

    def replay():
        device = Device(name="bench", capacity=200 * GIB)
        allocator = stalloc.build_runtime_allocator(device)
        return replay_trace(dense_trace, allocator)

    result = benchmark(replay)
    assert result.success
