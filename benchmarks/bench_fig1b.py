"""Benchmark regenerating fig1b of the paper via its experiment harness."""


def test_fig1b(regenerate):
    result = regenerate("fig1b", quick=False)
    assert result.experiment_id == "fig1b"
