"""Benchmark regenerating fig9b of the paper via its experiment harness."""


def test_fig9b(regenerate):
    result = regenerate("fig9b", quick=True)
    assert result.experiment_id == "fig9b"
