"""Benchmark regenerating fig12 of the paper via its experiment harness."""


def test_fig12(regenerate):
    result = regenerate("fig12", quick=False)
    assert result.experiment_id == "fig12"
