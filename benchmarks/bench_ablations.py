"""Ablation benchmarks for the design choices called out in DESIGN.md.

These compare the static-plan quality (reserved pool size) and planning cost
of STAlloc's design against the ablated variants:

* HomoPhase fusion on vs off (the TMP acceptance test of Figure 7);
* descending vs ascending HomoSize planning order;
* gap insertion of smaller groups into larger layers on vs off;
* the paper's insertion-based fusion greedy vs the repack-based fusion.
"""

from __future__ import annotations

import pytest

from repro.core.profiler import AllocationProfiler
from repro.core.synthesizer import PlanSynthesizer, SynthesizerConfig
from repro.gpu.device import GIB
from repro.simulator.runner import generate_trace
from repro.experiments.common import A800_WORKLOADS


@pytest.fixture(scope="module")
def llama_profile():
    config = A800_WORKLOADS["llama2-7b"].preset("R")
    return AllocationProfiler().profile(generate_trace(config))


def _report(capsys, label: str, pool_size: int, baseline: int) -> None:
    with capsys.disabled():
        delta = 100.0 * (pool_size - baseline) / baseline if baseline else 0.0
        print(f"\n[ablation] {label}: static pool {pool_size / GIB:.2f} GiB ({delta:+.2f}% vs default)")


@pytest.fixture(scope="module")
def default_pool_size(llama_profile):
    return PlanSynthesizer().synthesize(llama_profile).pool_size


def test_default_design(benchmark, llama_profile, capsys, default_pool_size):
    plan = benchmark(lambda: PlanSynthesizer().synthesize(llama_profile))
    _report(capsys, "default (fusion + descending + gap insertion)", plan.pool_size, default_pool_size)


def test_without_fusion(benchmark, llama_profile, capsys, default_pool_size):
    synthesizer = PlanSynthesizer(SynthesizerConfig(enable_fusion=False))
    plan = benchmark(lambda: synthesizer.synthesize(llama_profile))
    _report(capsys, "no HomoPhase fusion", plan.pool_size, default_pool_size)
    assert plan.pool_size >= default_pool_size * 0.999


def test_ascending_size_order(benchmark, llama_profile, capsys, default_pool_size):
    synthesizer = PlanSynthesizer(SynthesizerConfig(descending_size_order=False))
    plan = benchmark(lambda: synthesizer.synthesize(llama_profile))
    _report(capsys, "ascending HomoSize order", plan.pool_size, default_pool_size)
    assert plan.pool_size >= default_pool_size * 0.999


def test_without_gap_insertion(benchmark, llama_profile, capsys, default_pool_size):
    synthesizer = PlanSynthesizer(SynthesizerConfig(enable_gap_insertion=False))
    plan = benchmark(lambda: synthesizer.synthesize(llama_profile))
    _report(capsys, "no gap insertion", plan.pool_size, default_pool_size)
    assert plan.pool_size >= default_pool_size * 0.999


def test_insertion_fusion_strategy(benchmark, llama_profile, capsys, default_pool_size):
    synthesizer = PlanSynthesizer(SynthesizerConfig(fusion_strategy="insertion"))
    plan = benchmark(lambda: synthesizer.synthesize(llama_profile))
    _report(capsys, "paper insertion-greedy fusion", plan.pool_size, default_pool_size)
