"""Benchmarks for the auto-parallelism search planner.

The planner's value proposition is quantified directly: the pruned search
must return the same best config as the exhaustive oracle while evaluating
a fraction of the candidate grid (and, cold-for-cold, in a fraction of the
wall time).  ``BENCH_search.json`` records the measured trajectory — see
that file for the numbers shipped with each version.
"""

from __future__ import annotations

from repro.search import load_search_spec, run_search


def _search(preset: str, tmp_path, *, exhaustive: bool):
    spec = load_search_spec(preset)
    tag = "exhaustive" if exhaustive else "pruned"
    return run_search(
        spec,
        cache_dir=tmp_path / f"{preset}-{tag}",
        reuse_results=False,
        exhaustive=exhaustive,
    )


def test_search_gpt_tiny_pruned(benchmark, tmp_path):
    """Cold pruned search: bounds kill most of the grid before pricing."""
    result = benchmark.pedantic(
        lambda: _search("gpt-tiny", tmp_path, exhaustive=False), rounds=1, iterations=1
    )
    assert result.best is not None
    assert result.evaluated <= result.candidates_total / 2


def test_search_gpt_tiny_exhaustive(benchmark, tmp_path):
    """Cold exhaustive oracle over the same grid: the cost pruning avoids."""
    result = benchmark.pedantic(
        lambda: _search("gpt-tiny", tmp_path, exhaustive=True), rounds=1, iterations=1
    )
    assert result.best is not None
    assert result.evaluated == result.candidates_total


def test_search_moe_tiny_pruned(benchmark, tmp_path):
    """MoE search: the memory bound alone carries the pruning."""
    result = benchmark.pedantic(
        lambda: _search("moe-tiny", tmp_path, exhaustive=False), rounds=1, iterations=1
    )
    assert result.best is not None
    assert result.pruned_by_memory > 0


def test_search_cached_rerun(benchmark, tmp_path):
    """Warm rerun of the pruned search: every priced row is cache-served."""
    spec = load_search_spec("gpt-tiny")
    cache_dir = tmp_path / "warm"
    run_search(spec, cache_dir=cache_dir)  # prime every cache layer
    result = benchmark.pedantic(
        lambda: run_search(spec, cache_dir=cache_dir), rounds=3, iterations=1
    )
    assert result.cache_stats["cached_rows"] == result.evaluated
