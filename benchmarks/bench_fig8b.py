"""Benchmark regenerating fig8b of the paper via its experiment harness."""


def test_fig8b(regenerate):
    result = regenerate("fig8b", quick=True)
    assert result.experiment_id == "fig8b"
