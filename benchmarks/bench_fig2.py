"""Benchmark regenerating fig2 of the paper via its experiment harness."""


def test_fig2(regenerate):
    result = regenerate("fig2", quick=False)
    assert result.experiment_id == "fig2"
